//! Times the sequential agent-array hot loop: single-thread interactions
//! per second for the DSC empirical configuration at n ∈ {10³, 10⁴, 10⁵,
//! 10⁶}, recorded into `BENCH_hotloop.json` together with the baseline
//! numbers of the two previous engines, so each overhaul's speedup stays
//! auditable:
//!
//! * **seed engine** (commit e6ffe7a): `&mut dyn Rng` transitions, two RNG
//!   draws per pair, per-step float time accounting (no 10⁶ point — the
//!   seed harness never ran one);
//! * **PR-2 engine** (commit ec8a6c8): monomorphized chunked `step_block`,
//!   single-draw pair sampling — but 40-byte `DscState` and in-place
//!   sequential application, leaving stepping memory-latency-bound at
//!   n ≥ 10⁵;
//! * **current engine**: 24-byte packed states, gather/compute/scatter
//!   chunks with a within-chunk hazard scan (see
//!   `pp_sim::Simulator::step_block`).
//!
//! Two modes per population size:
//!
//! * **plain** — raw `Simulator` stepping, no observer (`O = ()`);
//! * **tracked** — stepping under the [`pp_sim::EstimateTracker`] observer, i.e.
//!   exactly the per-interaction work every §5 convergence experiment pays
//!   (this is the workload behind `Experiment::run` and all figures).
//!
//! A chunk-size sweep rides along: `step_block`'s pairs-per-chunk constant
//! (production: 64) is measured against 32 and 128 on the memory-bound
//! populations via [`Simulator::step_n_with_chunk`], alternated A/B/C over
//! several rounds against the shared-vCPU noise, and recorded under
//! `"chunk_sweep"` in the JSON so the choice of `CHUNK` stays auditable.
//!
//! Two further measurements ride along:
//!
//! * **parallel stepper** — `Simulator::step_n_parallel` at 1/2/4 worker
//!   threads per population, recorded under the `parallel_*` keys. On a
//!   multi-core box this shows the intra-run speedup; on a single-core
//!   box (this repository's reference box) it documents parity: the
//!   super-block engine at `threads = 1` against the sequential hot loop.
//! * **scanned-vs-tracked crossover** — from the measured plain and
//!   tracked rates plus a timed full-state estimate scan, the snapshot
//!   interval (in parallel time units) above which `ScannedEstimates`
//!   beats `TrackedEstimates`, recorded per population under
//!   `scanned_crossover_snapshot_interval_pt`. Every figure snapshots at
//!   ≥ 1 pt, so the experiments run scanned (`Sweep::run_scanned`).
//!
//! Flags: the shared `Scale` flags; `--smoke` shrinks the measurement
//! budget so CI can exercise the harness (and validate the JSON schema)
//! in seconds.

use pp_bench::Scale;
use pp_sim::{ChunkSize, ParallelPolicy, Simulator, SoaSimulator};
use std::io::Write;
use std::time::Instant;

/// Thread counts measured for the intra-run parallel stepper.
const PARALLEL_THREADS: [usize; 3] = [1, 2, 4];

/// Single-thread interactions/sec of the two previous engines on this
/// repository's reference box (1-core Intel Xeon @ 2.10 GHz, shared vCPU).
/// The PR-2 numbers are medians of 35 runs *alternated* with the current
/// engine (A/B/A/B… on the same box, same seed; the shared box swings
/// ±20% on second timescales, hence the large sample); re-measure by
/// checking out ec8a6c8, adding the 10⁶ point, and alternating the two
/// binaries. Seed-engine numbers carry over from the PR-2 measurement
/// session (no 10⁶ point existed).
const BASELINE: [Baseline; 4] = [
    Baseline {
        n: 1_000,
        seed_plain: Some(50.99e6),
        seed_tracked: Some(28.08e6),
        pr2_plain: 58.83e6,
        pr2_tracked: 50.46e6,
    },
    Baseline {
        n: 10_000,
        seed_plain: Some(47.69e6),
        seed_tracked: Some(28.19e6),
        pr2_plain: 55.73e6,
        pr2_tracked: 50.96e6,
    },
    Baseline {
        n: 100_000,
        seed_plain: Some(30.05e6),
        seed_tracked: Some(16.50e6),
        pr2_plain: 41.67e6,
        pr2_tracked: 36.35e6,
    },
    Baseline {
        n: 1_000_000,
        seed_plain: None,
        seed_tracked: None,
        pr2_plain: 32.23e6,
        pr2_tracked: 27.67e6,
    },
];

struct Baseline {
    n: usize,
    /// Seed-engine rates; `None` where the seed harness had no point.
    seed_plain: Option<f64>,
    seed_tracked: Option<f64>,
    /// PR-2-engine rates (alternating-run medians on this box).
    pr2_plain: f64,
    pr2_tracked: f64,
}

fn measure(mut sim_step: impl FnMut(u64), budget_secs: f64) -> f64 {
    let batch: u64 = 100_000;
    let start = Instant::now();
    let mut total = 0u64;
    loop {
        sim_step(batch);
        total += batch;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= budget_secs {
            return total as f64 / elapsed;
        }
    }
}

/// Measures plain stepping at each chunk size on the memory-bound
/// populations, alternating the three sizes per round (A/B/C/A/B/C…) so
/// box-level throughput swings hit all of them alike. Returns one JSON
/// object per population.
fn chunk_sweep(scale: &Scale, warm: f64, budget: f64, rounds: usize) -> Vec<String> {
    const CHUNKS: [(ChunkSize, &str); 3] = [
        (ChunkSize::C32, "c32"),
        (ChunkSize::C64, "c64"),
        (ChunkSize::C128, "c128"),
    ];
    let ns: &[usize] = if scale.smoke {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    let mut lines = Vec::new();
    for &n in ns {
        // One warmed steady-state simulator per chunk size, re-measured
        // every round.
        let mut sims: Vec<Simulator<_, ()>> = CHUNKS
            .iter()
            .map(|_| {
                let mut sim = Simulator::with_seed(pp_bench::paper_protocol(), n, scale.seed);
                sim.run_parallel_time(warm);
                sim
            })
            .collect();
        let mut rates: Vec<Vec<f64>> = vec![Vec::new(); CHUNKS.len()];
        for _ in 0..rounds {
            for (k, &(chunk, _)) in CHUNKS.iter().enumerate() {
                rates[k].push(measure(|c| sims[k].step_n_with_chunk(c, chunk), budget));
            }
        }
        let medians: Vec<f64> = rates
            .iter()
            .map(|r| pp_analysis::median(r).expect("at least one round"))
            .collect();
        let winner = CHUNKS[medians
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite rates"))
            .expect("nonempty")
            .0]
            .1;
        println!(
            "chunk sweep n = {:>7}: c32 {:6.2} M/s  c64 {:6.2} M/s  c128 {:6.2} M/s  -> {winner}",
            n,
            medians[0] / 1e6,
            medians[1] / 1e6,
            medians[2] / 1e6,
        );
        lines.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"c32_interactions_per_sec\": {:.1},\n",
                "      \"c64_interactions_per_sec\": {:.1},\n",
                "      \"c128_interactions_per_sec\": {:.1},\n",
                "      \"winner\": \"{}\"\n",
                "    }}"
            ),
            n, medians[0], medians[1], medians[2], winner,
        ));
    }
    lines
}

fn main() {
    let scale = Scale::from_args();
    let (warm, budget) = if scale.smoke {
        (5.0, 0.05)
    } else {
        // 2.5 s per point: the reference box is a shared vCPU whose
        // throughput swings ±20% on second timescales; longer windows
        // average the neighbor noise down.
        (50.0, 2.5)
    };
    println!("single-thread DSC hot-loop timing (budget {budget} s per point)");

    let mut lines = Vec::new();
    for b in BASELINE {
        let mut plain_sim = Simulator::with_seed(pp_bench::paper_protocol(), b.n, scale.seed);
        plain_sim.run_parallel_time(warm);
        let plain = measure(|c| plain_sim.step_n(c), budget);

        let mut tracked_sim = Simulator::tracked(pp_bench::paper_protocol(), b.n, scale.seed);
        tracked_sim.run_parallel_time(warm);
        let tracked = measure(|c| tracked_sim.step_n(c), budget);

        // Intra-run parallel stepper at each thread count, on its own
        // warmed simulator (the engine is thread-count-invariant in
        // results, so only throughput differs).
        let parallel_rates: Vec<f64> = PARALLEL_THREADS
            .iter()
            .map(|&t| {
                let mut sim: Simulator<_, ()> =
                    Simulator::with_seed(pp_bench::paper_protocol(), b.n, scale.seed);
                sim.run_parallel_time(warm);
                measure(
                    |c| sim.step_n_parallel(c, ParallelPolicy::threads(t)),
                    budget,
                )
            })
            .collect();
        let parallel_best = parallel_rates
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);

        // Struct-of-arrays engine A/B: same protocol, seed, and warm-up,
        // measured in the adjacent window (the shared box swings ±20% on
        // second timescales; ratios near 1.0 are parity).
        let mut soa_plain_sim =
            SoaSimulator::with_seed(pp_bench::paper_protocol(), b.n, scale.seed);
        soa_plain_sim.run_parallel_time(warm);
        let soa_plain = measure(|c| soa_plain_sim.step_n(c), budget);

        let mut soa_tracked_sim =
            SoaSimulator::tracked(pp_bench::paper_protocol(), b.n, scale.seed);
        soa_tracked_sim.run_parallel_time(warm);
        let soa_tracked = measure(|c| soa_tracked_sim.step_n(c), budget);

        // Scanned-vs-tracked crossover: tracking costs
        // (1/tracked − 1/plain) s per interaction; a snapshot scan costs
        // one `estimate_stats` pass. Scanning wins once the snapshot
        // interval exceeds scan_cost / (n · per-interaction overhead)
        // parallel-time units.
        let scans = if scale.smoke { 20 } else { 200 };
        let scan_secs = {
            let start = Instant::now();
            for _ in 0..scans {
                std::hint::black_box(plain_sim.estimate_stats());
            }
            start.elapsed().as_secs_f64() / scans as f64
        };

        // The SoA estimate scan reads the two dense u32 lanes (8 bytes
        // per agent, unit stride) instead of 24-byte structs; under the
        // empirical configuration the lane summary equals the estimate
        // summary exactly (`tests/soa.rs`).
        let soa_scan_secs = {
            let start = Instant::now();
            for _ in 0..scans {
                std::hint::black_box(soa_plain_sim.effective_max_stats());
            }
            start.elapsed().as_secs_f64() / scans as f64
        };
        // Scan-heavy workload (one full estimate snapshot per quarter unit
        // of parallel time, the densest §5 snapshot cadence), derived from
        // the measured stepping rates and scan times.
        let quarter = b.n as f64 / 4.0;
        let scanheavy_speedup =
            (quarter / plain + scan_secs) / (quarter / soa_plain + soa_scan_secs);
        let overhead = 1.0 / tracked - 1.0 / plain;
        let crossover_pt = if overhead > 0.0 {
            format!("{:.6}", scan_secs / (overhead * b.n as f64))
        } else {
            // Box noise swallowed the tracker overhead this round.
            "null".to_string()
        };

        let speedup_plain = plain / b.pr2_plain;
        let speedup_tracked = tracked / b.pr2_tracked;
        println!(
            "n = {:>7}: plain {:7.2} M/s ({speedup_plain:4.2}x vs PR-2 {:5.2} M)  \
             tracked {:7.2} M/s ({speedup_tracked:4.2}x vs PR-2 {:5.2} M)",
            b.n,
            plain / 1e6,
            b.pr2_plain / 1e6,
            tracked / 1e6,
            b.pr2_tracked / 1e6,
        );
        println!(
            "             parallel t1 {:6.2} t2 {:6.2} t4 {:6.2} M/s ({:.2}x vs plain)  \
             scan crossover {crossover_pt} pt",
            parallel_rates[0] / 1e6,
            parallel_rates[1] / 1e6,
            parallel_rates[2] / 1e6,
            parallel_best / plain,
        );
        println!(
            "             soa plain {:6.2} M/s ({:.2}x)  tracked {:6.2} M/s ({:.2}x)  \
             scan {:.2}x  scan-heavy {:.2}x",
            soa_plain / 1e6,
            soa_plain / plain,
            soa_tracked / 1e6,
            soa_tracked / tracked,
            scan_secs / soa_scan_secs,
            scanheavy_speedup,
        );
        let seed_fields = match (b.seed_plain, b.seed_tracked) {
            (Some(sp), Some(st)) => format!(
                concat!(
                    "      \"seed_plain_interactions_per_sec\": {:.1},\n",
                    "      \"seed_tracked_interactions_per_sec\": {:.1},\n",
                    "      \"plain_speedup_vs_seed\": {:.4},\n",
                    "      \"tracked_speedup_vs_seed\": {:.4},\n",
                ),
                sp,
                st,
                plain / sp,
                tracked / st,
            ),
            _ => String::new(),
        };
        lines.push(format!(
            concat!(
                "    {{\n",
                "      \"n\": {},\n",
                "      \"plain_interactions_per_sec\": {:.1},\n",
                "      \"tracked_interactions_per_sec\": {:.1},\n",
                "{}",
                "      \"pr2_plain_interactions_per_sec\": {:.1},\n",
                "      \"pr2_tracked_interactions_per_sec\": {:.1},\n",
                "      \"plain_speedup_vs_pr2\": {:.4},\n",
                "      \"tracked_speedup_vs_pr2\": {:.4},\n",
                "      \"parallel_thread_sweep\": [{:.1}, {:.1}, {:.1}],\n",
                "      \"parallel_interactions_per_sec\": {:.1},\n",
                "      \"parallel_speedup_vs_plain\": {:.4},\n",
                "      \"soa_plain_interactions_per_sec\": {:.1},\n",
                "      \"soa_tracked_interactions_per_sec\": {:.1},\n",
                "      \"soa_plain_ratio_vs_aos\": {:.4},\n",
                "      \"soa_tracked_ratio_vs_aos\": {:.4},\n",
                "      \"soa_scan_speedup_vs_aos\": {:.4},\n",
                "      \"soa_scanheavy_speedup_vs_aos\": {:.4},\n",
                "      \"scanned_crossover_snapshot_interval_pt\": {}\n",
                "    }}"
            ),
            b.n,
            plain,
            tracked,
            seed_fields,
            b.pr2_plain,
            b.pr2_tracked,
            speedup_plain,
            speedup_tracked,
            parallel_rates[0],
            parallel_rates[1],
            parallel_rates[2],
            parallel_best,
            parallel_best / plain,
            soa_plain,
            soa_tracked,
            soa_plain / plain,
            soa_tracked / tracked,
            scan_secs / soa_scan_secs,
            scanheavy_speedup,
            crossover_pt,
        ));
    }

    // The chunk-size sweep: fewer rounds in smoke mode, where only the
    // schema matters.
    let chunk_rounds = if scale.smoke { 1 } else { 5 };
    let chunk_lines = chunk_sweep(
        &scale,
        if scale.smoke { 1.0 } else { warm },
        budget,
        chunk_rounds,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"DSC empirical configuration, steady state, single thread; ",
            "tracked = under the EstimateTracker observer, the per-interaction work of ",
            "every convergence experiment (Experiment::run)\",\n",
            "  \"engine\": \"packed 24-byte DscState, gather/compute/scatter step_block ",
            "with within-chunk hazard scan, single-draw pair sampling\",\n",
            "  \"pr2_engine\": \"ec8a6c8: monomorphized chunked step_block, 40-byte states, ",
            "in-place sequential application\",\n",
            "  \"seed_engine\": \"e6ffe7a: dyn Rng, two draws per pair\",\n",
            "  \"master_seed\": {},\n",
            "  \"available_parallelism\": {},\n",
            "  \"parallel_threads\": [1, 2, 4],\n",
            "  \"parallel_note\": \"step_n_parallel thread sweep per point; on the 1-core ",
            "reference box the acceptance criterion is single-core parity (threads = 1 within ",
            "noise of the sequential hot loop), not speedup — re-measure on a >= 4-core box ",
            "for the >= 1.5x column\",\n",
            "  \"scanned_crossover_note\": \"snapshot interval (parallel-time units) above ",
            "which ScannedEstimates beats TrackedEstimates, from measured rates and a timed ",
            "estimate_stats scan; null when box noise swallowed the tracker overhead\",\n",
            "  \"soa_note\": \"A/B of the struct-of-arrays engine (SoaSimulator, columnar ",
            "AgentStore) against the agent-array engine, same seed and warm-up, adjacent ",
            "windows on the 1-core reference box (the box swings +-20% on second timescales; ",
            "read ratios as bands, not points). Stepping is random-access, so each SoA ",
            "gather/scatter touches three lanes where the struct engine touches one cache ",
            "line: the plain-stepping ratio sits near 0.9x while the population is ",
            "cache-resident and drops toward ~0.5x at n = 10^6 — the documented cost side of ",
            "the layout trade on a 1-core box. The win side is the whole-population estimate ",
            "scan (soa_scan_speedup_vs_aos: effective_max over two dense u32 lanes, 8 bytes ",
            "per agent vs 24-byte structs, stack-bucketed counts) and snapshot-heavy cells ",
            "at scan-dominated cadences (soa_scanheavy_speedup_vs_aos: derived, one full ",
            "snapshot scan per n/4 interactions — stepping dominates it at large n). ",
            "Trajectories are bit-identical across engines (tests/soa.rs)\",\n",
            "  \"points\": [\n{}\n  ],\n",
            "  \"chunk_sweep_note\": \"plain stepping at 32/64/128 pairs per step_block ",
            "chunk, alternated per round, medians of {} rounds; the winner justifies ",
            "the production CHUNK constant\",\n",
            "  \"chunk_sweep\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.seed,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        lines.join(",\n"),
        chunk_rounds,
        chunk_lines.join(",\n"),
    );
    // Smoke runs must not clobber the committed paper-scale record.
    let path = if scale.smoke {
        "BENCH_hotloop_smoke.json"
    } else {
        "BENCH_hotloop.json"
    };
    let mut f = std::fs::File::create(path).expect("create BENCH_hotloop json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_hotloop json");
    println!("wrote {path}");
}
