//! Binary wrapper for the `burst_overlap` experiment (see `pp_bench::experiments::burst_overlap`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::burst_overlap::run(&scale);
}
