//! Times the [`Sweep`] engine on the paper's workload shape —
//! a 96-runs-per-point convergence sweep (§5) — once serially
//! (`--threads 1` equivalent) and once at machine parallelism, and records
//! both in `BENCH_sweep.json`.
//!
//! Flags: the shared `Scale` flags; `--runs` defaults to 96 here
//! (the paper's count) rather than the quick-scale 16, and `--smoke`
//! shrinks the grid so CI can exercise the harness.
//!
//! Alongside the convergence sweep it times one epidemic on the batched
//! (tau-leaping) backend at n = 10⁹ — the scale the exact backends cannot
//! reach — and records its wall clock under the `batched_*` JSON keys.
//!
//! A third section times the *intra-run* axis: the same agent-array
//! epidemic cell stepped with `ParallelPolicy::threads(1)` versus
//! `ParallelPolicy::auto()`, across-cell workers pinned to one so the
//! stepper policy is the only variable. The `intra_run_*` keys record it
//! next to `across_cell_speedup_auto_over_1` (an alias of the historical
//! `speedup_auto_over_1`) so the two parallelism axes can be compared in
//! one file.

use pp_bench::experiments::convergence;
use pp_bench::{log2n, Scale};
use pp_protocols::Infection;
use pp_sim::{BatchedCountSimulator, ParallelPolicy, SoaSimulator, Sweep, TrackedEstimates};
use std::io::Write;
use std::time::Instant;

fn main() {
    // This harness defaults to the paper's 96 runs; an explicit --runs (or
    // --smoke's preset) still wins because Scale::from_args applies it last.
    let runs_given = std::env::args().any(|a| a == "--runs" || a == "--smoke" || a == "--full");
    let mut scale = Scale::from_args();
    if !runs_given {
        scale.runs = 96;
    }
    let exps: &[u32] = if scale.smoke { &[5, 6] } else { &[7, 8, 9] };

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "timing a {}-run convergence sweep over n in {:?} ({} core(s) available)",
        scale.runs,
        exps.iter().map(|&e| 1usize << e).collect::<Vec<_>>(),
        cores
    );

    let time_with = |threads: usize| {
        let mut s = scale.clone();
        s.threads = threads;
        let results = convergence::population_sweep(&s, exps);
        assert_eq!(results.total_runs(), scale.runs * exps.len());
        results.wall.as_secs_f64()
    };

    let serial = time_with(1);
    println!("threads = 1     : {serial:.3} s");
    let auto = time_with(0);
    println!("threads = 0/auto: {auto:.3} s");
    let speedup = serial / auto;
    println!("speedup         : {speedup:.2}x");

    // The headline scale point: a full epidemic at n = 10⁹ on the batched
    // backend (smoke keeps CI fast with a 10⁶-agent stand-in).
    let (batched_n, batched_runs) = if scale.smoke {
        (1_000_000usize, 2usize)
    } else {
        (1_000_000_000usize, 4usize)
    };
    let batched = Sweep::new(Infection::new())
        .populations([batched_n])
        .runs(batched_runs)
        .master_seed(scale.seed)
        .threads(0)
        .horizon(8.0 * log2n(batched_n))
        .snapshot_every(1.0)
        .init_counts(|n| vec![n - 1, 1])
        .run_on::<BatchedCountSimulator<_>, _>(TrackedEstimates)
        .expect("a counts-initialized static grid fits the batched backend");
    let batched_wall = batched.wall.as_secs_f64();
    let completed = batched
        .cells
        .iter()
        .flat_map(|c| c.runs.iter())
        .filter(|r| {
            r.snapshots
                .iter()
                .any(|s| s.estimates.is_some_and(|e| e.without_estimate == 0))
        })
        .count();
    assert_eq!(
        completed, batched_runs,
        "every epidemic at n = {batched_n} must complete within the Lemma 4.2 horizon"
    );
    println!("batched n = {batched_n}: {batched_runs} epidemic(s) in {batched_wall:.3} s");

    // Intra-run sharding: one agent-array epidemic cell, across-cell
    // workers pinned to 1, timed with the parallel stepper at one thread
    // and at machine parallelism. Both runs produce bit-identical rows
    // (thread-count invariance), so only the wall clock differs.
    let (intra_n, intra_runs) = if scale.smoke {
        (1usize << 14, 2usize)
    } else {
        (1usize << 17, 8usize)
    };
    let time_intra = |policy: ParallelPolicy| {
        let results = Sweep::new(Infection::new())
            .populations([intra_n])
            .runs(intra_runs)
            .master_seed(scale.seed)
            .threads(1)
            .horizon(4.0 * log2n(intra_n))
            .snapshot_every(log2n(intra_n))
            .init_with(|i| i == 0)
            .parallel(policy)
            .run_scanned();
        assert_eq!(results.total_runs(), intra_runs);
        results.wall.as_secs_f64()
    };
    let intra_serial = time_intra(ParallelPolicy::threads(1));
    println!("intra-run n = {intra_n}, threads = 1   : {intra_serial:.3} s");
    let intra_auto = time_intra(ParallelPolicy::auto());
    println!("intra-run n = {intra_n}, threads = auto: {intra_auto:.3} s");
    let intra_speedup = intra_serial / intra_auto;
    println!("intra-run speedup                      : {intra_speedup:.2}x");

    // Struct-of-arrays cell: the same DSC convergence-cell shape (step one
    // parallel-time unit, take one full estimate snapshot, repeat) on the
    // columnar engine versus the agent-array engine. The SoA engine is not
    // a Sweep backend (snapshot drivers need the contiguous agent slice),
    // so the cell loop is hand-rolled identically for both.
    let (soa_n, soa_runs, soa_horizon) = if scale.smoke {
        (1usize << 12, 2usize, 16u32)
    } else {
        (1usize << 17, 4usize, 64u32)
    };
    let soa_cell_wall = {
        let start = Instant::now();
        for r in 0..soa_runs {
            let mut sim =
                SoaSimulator::with_seed(pp_bench::paper_protocol(), soa_n, scale.seed + r as u64);
            for _ in 0..soa_horizon {
                sim.run_parallel_time(1.0);
                std::hint::black_box(sim.effective_max_stats());
            }
        }
        start.elapsed().as_secs_f64()
    };
    let aos_cell_wall = {
        let start = Instant::now();
        for r in 0..soa_runs {
            let mut sim = pp_sim::Simulator::with_seed(
                pp_bench::paper_protocol(),
                soa_n,
                scale.seed + r as u64,
            );
            for _ in 0..soa_horizon {
                sim.run_parallel_time(1.0);
                std::hint::black_box(sim.estimate_stats());
            }
        }
        start.elapsed().as_secs_f64()
    };
    let soa_cell_speedup = aos_cell_wall / soa_cell_wall;
    println!(
        "soa cell n = {soa_n}: soa {soa_cell_wall:.3} s  aos {aos_cell_wall:.3} s  \
         ({soa_cell_speedup:.2}x)"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"convergence population sweep\",\n",
            "  \"runs_per_point\": {},\n",
            "  \"populations\": {:?},\n",
            "  \"master_seed\": {},\n",
            "  \"available_parallelism\": {},\n",
            "  \"wall_seconds_threads_1\": {:.6},\n",
            "  \"wall_seconds_threads_auto\": {:.6},\n",
            "  \"speedup_auto_over_1\": {:.4},\n",
            "  \"across_cell_speedup_auto_over_1\": {:.4},\n",
            "  \"intra_run_n\": {},\n",
            "  \"intra_run_runs\": {},\n",
            "  \"intra_run_wall_seconds_threads_1\": {:.6},\n",
            "  \"intra_run_wall_seconds_threads_auto\": {:.6},\n",
            "  \"intra_run_speedup_auto_over_1\": {:.4},\n",
            "  \"batched_n\": {},\n",
            "  \"batched_runs\": {},\n",
            "  \"batched_wall_seconds\": {:.6},\n",
            "  \"soa_cell_note\": \"one DSC convergence cell (run one parallel-time unit, ",
            "snapshot the estimate distribution, repeat to the horizon) on the ",
            "struct-of-arrays engine (dense-lane scan) vs the agent-array engine ",
            "(struct scan), identical hand-rolled loops; trajectories are bit-identical ",
            "across engines (tests/soa.rs)\",\n",
            "  \"soa_cell_n\": {},\n",
            "  \"soa_cell_runs\": {},\n",
            "  \"soa_cell_wall_seconds\": {:.6},\n",
            "  \"aos_cell_wall_seconds\": {:.6},\n",
            "  \"soa_cell_speedup_vs_aos\": {:.4}\n",
            "}}\n"
        ),
        scale.runs,
        exps.iter().map(|&e| 1usize << e).collect::<Vec<_>>(),
        scale.seed,
        cores,
        serial,
        auto,
        speedup,
        speedup,
        intra_n,
        intra_runs,
        intra_serial,
        intra_auto,
        intra_speedup,
        batched_n,
        batched_runs,
        batched_wall,
        soa_n,
        soa_runs,
        soa_cell_wall,
        aos_cell_wall,
        soa_cell_speedup,
    );
    // Smoke runs must not clobber the committed paper-scale record.
    let path = if scale.smoke {
        "BENCH_sweep_smoke.json"
    } else {
        "BENCH_sweep.json"
    };
    let mut f = std::fs::File::create(path).expect("create BENCH_sweep json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_sweep json");
    println!("wrote {path}");
}
