//! Binary wrapper for the `holding` experiment (see `pp_bench::experiments::holding`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::holding::run(&scale);
}
