//! Binary wrapper for the `fig3` experiment (see `pp_bench::experiments::fig3`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::fig3::run(&scale);
}
