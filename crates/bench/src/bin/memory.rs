//! Binary wrapper for the `memory` experiment (see `pp_bench::experiments::memory`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::memory::run(&scale);
}
