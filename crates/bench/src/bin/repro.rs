//! Runs the complete reproduction suite (E1–E13) in sequence.
//!
//! Quick scale by default; pass `--full` for the paper's scale (n up to
//! 10^6, 96 runs — expect hours).
fn main() {
    let scale = pp_bench::Scale::from_args();
    let t0 = std::time::Instant::now();
    pp_bench::experiments::fig2::run(&scale);
    pp_bench::experiments::fig3::run(&scale);
    pp_bench::experiments::fig4::run(&scale);
    pp_bench::experiments::fig5::run(&scale);
    pp_bench::experiments::convergence::run(&scale);
    pp_bench::experiments::holding::run(&scale);
    pp_bench::experiments::memory::run(&scale);
    pp_bench::experiments::burst_overlap::run(&scale);
    pp_bench::experiments::compare::run(&scale);
    pp_bench::experiments::ablation::run(&scale);
    pp_bench::experiments::lemmas::run(&scale);
    pp_bench::experiments::accuracy::run(&scale);
    println!("full suite finished in {:.1?}", t0.elapsed());
}
