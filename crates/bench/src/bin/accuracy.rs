//! Binary wrapper for the `accuracy` experiment (see `pp_bench::experiments::accuracy`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::accuracy::run(&scale);
}
