//! Binary wrapper for the `fig4` experiment (see `pp_bench::experiments::fig4`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::fig4::run(&scale);
}
