//! Binary wrapper for the `fig5` experiment (see `pp_bench::experiments::fig5`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::fig5::run(&scale);
}
