//! Binary wrapper for the `compare` experiment (see `pp_bench::experiments::compare`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::compare::run(&scale);
}
