//! Binary wrapper for the `ablation` experiment (see `pp_bench::experiments::ablation`).
fn main() {
    let scale = pp_bench::Scale::from_args();
    pp_bench::experiments::ablation::run(&scale);
}
