//! # pp-bench — the benchmark harness
//!
//! One experiment module per figure of the paper plus the theorem-validation
//! and ablation experiments of DESIGN.md §4 (E1–E11). Every experiment
//! registers an [`experiments::ExperimentSpec`] in the declarative
//! [`experiments::REGISTRY`]; the `dsc-bench` driver binary runs any subset
//! (`dsc-bench <name>… | all | repro`), and each experiment executes its
//! whole grid on the [`pp_sim::Sweep`] engine — parallel,
//! bit-identical across thread counts.
//!
//! Every experiment supports three scales:
//!
//! * **quick** (default) — laptop scale: minutes for the full suite, with
//!   reduced `n`, runs, and horizons;
//! * **full** (`--full`) — the paper's scale (`n` up to 10^6, 96 runs,
//!   5000 parallel time); expect hours;
//! * **smoke** (`--smoke`) — CI scale: seconds end to end, proving every
//!   registered experiment still emits rows.
//!
//! Results are printed as tables/sparklines; every experiment returns its
//! rows as [`pp_analysis::TableSpec`]s, which the driver writes as
//! plot-ready CSV under `results/` (override with `--out <dir>`) through
//! the one shared `pp_analysis` writer.

#![forbid(unsafe_code)]

pub mod experiments;

use dsc_core::{DscConfig, DynamicSizeCounting};
use pp_sim::Sweep;

/// Scale and output settings shared by all experiments.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Paper scale when true; laptop scale otherwise.
    pub full: bool,
    /// CI scale when true: tiny populations, few seeds, short horizons.
    /// Wins over `full`; exists so every entry point has a seconds-long
    /// mode whose only job is to prove the pipeline runs end to end.
    pub smoke: bool,
    /// Independent runs per data point (the paper uses 96).
    pub runs: usize,
    /// Master seed; per-run seeds derive from it.
    pub seed: u64,
    /// Worker threads (0 = machine parallelism).
    pub threads: usize,
    /// Output directory for CSV files.
    pub out_dir: String,
    /// Restricts the `scenario` experiment to one built-in trace
    /// (`--trace NAME`, or a bare trace name on the `dsc-bench` command
    /// line). `None` runs the whole catalog.
    pub trace: Option<String>,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            full: false,
            smoke: false,
            runs: 16,
            seed: 0xD5C0_2024,
            threads: 0,
            out_dir: "results".into(),
            trace: None,
        }
    }
}

impl Scale {
    /// The smoke-test scale: 2 runs per point, results under `dir`.
    pub fn smoke(dir: impl Into<String>) -> Scale {
        Scale {
            smoke: true,
            runs: 2,
            out_dir: dir.into(),
            ..Scale::default()
        }
    }

    /// Parses flags from an argument iterator (`--full`, `--smoke`,
    /// `--runs N`, `--seed S`, `--threads T`, `--out DIR`,
    /// `--trace NAME`), returning the scale and any positional (non-flag)
    /// arguments in order — the `dsc-bench` driver reads experiment names
    /// from the latter.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse_args(args: impl Iterator<Item = String>) -> (Scale, Vec<String>) {
        let mut scale = Scale::default();
        let mut positional = Vec::new();
        // An explicit --runs always wins over the --full/--smoke presets,
        // regardless of flag order.
        let mut runs_explicit = false;
        let mut args = args;
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--full" => {
                    scale.full = true;
                    if !runs_explicit {
                        scale.runs = 96;
                    }
                }
                "--smoke" => {
                    scale.smoke = true;
                    if !runs_explicit {
                        scale.runs = 2;
                    }
                }
                "--runs" => {
                    runs_explicit = true;
                    scale.runs = value("--runs").parse().expect("--runs takes a number");
                }
                "--seed" => scale.seed = value("--seed").parse().expect("--seed takes a number"),
                "--threads" => {
                    scale.threads = value("--threads")
                        .parse()
                        .expect("--threads takes a number")
                }
                "--out" => scale.out_dir = value("--out"),
                "--trace" => scale.trace = Some(value("--trace")),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [EXPERIMENT…] [--full | --smoke] [--runs N] [--seed S] \
                         [--threads T] [--out DIR] [--trace NAME]"
                    );
                    std::process::exit(0);
                }
                other if other.starts_with('-') => panic!("unknown argument: {other}"),
                other => positional.push(other.to_string()),
            }
        }
        (scale, positional)
    }

    /// Parses the process's command-line flags.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed or positional arguments
    /// (binaries that take positionals use [`Scale::parse_args`]).
    pub fn from_args() -> Scale {
        let (scale, positional) = Self::parse_args(std::env::args().skip(1));
        assert!(
            positional.is_empty(),
            "unexpected argument: {}",
            positional[0]
        );
        scale
    }

    /// Output path under the results directory.
    pub fn out_path(&self, file: &str) -> String {
        format!("{}/{}", self.out_dir, file)
    }
}

/// The protocol under test with the paper's empirical configuration.
pub fn paper_protocol() -> DynamicSizeCounting {
    DynamicSizeCounting::new(DscConfig::empirical())
}

/// Starts a [`Sweep`] of `protocol` preconfigured from `scale`
/// (runs per cell, master seed, worker threads).
pub fn sweep_of<P>(scale: &Scale, protocol: P) -> Sweep<P>
where
    P: pp_model::SizeEstimator + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    Sweep::new(protocol)
        .runs(scale.runs)
        .master_seed(scale.seed)
        .threads(scale.threads)
}

/// Formats a float with two decimals for tables.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// `log2(n)` as the reference the figures annotate.
pub fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_model::Protocol;

    #[test]
    fn default_scale_is_quick() {
        let s = Scale::default();
        assert!(!s.full);
        assert_eq!(s.runs, 16);
    }

    #[test]
    fn out_path_joins_dir() {
        let s = Scale::default();
        assert_eq!(s.out_path("fig2.csv"), "results/fig2.csv");
    }

    #[test]
    fn parse_args_splits_positionals_from_flags() {
        let args = ["fig2", "--smoke", "lemmas", "--runs", "5", "--out", "o"]
            .iter()
            .map(|s| (*s).to_string());
        let (scale, positional) = Scale::parse_args(args);
        assert!(scale.smoke);
        assert_eq!(scale.runs, 5, "explicit --runs beats the smoke preset");
        assert_eq!(scale.out_dir, "o");
        assert_eq!(positional, vec!["fig2".to_string(), "lemmas".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn parse_args_rejects_unknown_flags() {
        let _ = Scale::parse_args(["--bogus".to_string()].into_iter());
    }

    #[test]
    fn paper_protocol_uses_empirical_config() {
        let p = paper_protocol();
        assert_eq!(p.config().tau1, 6);
        assert_eq!(p.initial_state().max, 1);
    }
}
