//! # pp-bench — the benchmark harness
//!
//! One experiment module per figure of the paper plus the theorem-validation
//! and ablation experiments of DESIGN.md §4 (E1–E11). Each binary in
//! `src/bin` is a thin wrapper; `repro` runs everything.
//!
//! Every experiment supports two scales:
//!
//! * **quick** (default) — laptop scale: minutes for the full suite, with
//!   reduced `n`, runs, and horizons;
//! * **full** (`--full`) — the paper's scale (`n` up to 10^6, 96 runs,
//!   5000 parallel time); expect hours.
//!
//! Results are printed as tables/sparklines and written as plot-ready CSV
//! under `results/` (override with `--out <dir>`).

#![forbid(unsafe_code)]

pub mod experiments;

use dsc_core::{DscConfig, DynamicSizeCounting};
use pp_sim::{AdversarySchedule, RunResult, Sweep};

/// Scale and output settings shared by all experiments.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Paper scale when true; laptop scale otherwise.
    pub full: bool,
    /// CI scale when true: tiny populations, few seeds, short horizons.
    /// Wins over `full`; exists so every entry point has a seconds-long
    /// mode whose only job is to prove the pipeline runs end to end.
    pub smoke: bool,
    /// Independent runs per data point (the paper uses 96).
    pub runs: usize,
    /// Master seed; per-run seeds derive from it.
    pub seed: u64,
    /// Worker threads (0 = machine parallelism).
    pub threads: usize,
    /// Output directory for CSV files.
    pub out_dir: String,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            full: false,
            smoke: false,
            runs: 16,
            seed: 0xD5C0_2024,
            threads: 0,
            out_dir: "results".into(),
        }
    }
}

impl Scale {
    /// The smoke-test scale: 2 runs per point, results under `dir`.
    pub fn smoke(dir: impl Into<String>) -> Scale {
        Scale {
            smoke: true,
            runs: 2,
            out_dir: dir.into(),
            ..Scale::default()
        }
    }

    /// Parses command-line arguments (`--full`, `--smoke`, `--runs N`,
    /// `--seed S`, `--threads T`, `--out DIR`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_args() -> Scale {
        let mut scale = Scale::default();
        // An explicit --runs always wins over the --full/--smoke presets,
        // regardless of flag order.
        let mut runs_explicit = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut value = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match arg.as_str() {
                "--full" => {
                    scale.full = true;
                    if !runs_explicit {
                        scale.runs = 96;
                    }
                }
                "--smoke" => {
                    scale.smoke = true;
                    if !runs_explicit {
                        scale.runs = 2;
                    }
                }
                "--runs" => {
                    runs_explicit = true;
                    scale.runs = value("--runs").parse().expect("--runs takes a number");
                }
                "--seed" => scale.seed = value("--seed").parse().expect("--seed takes a number"),
                "--threads" => {
                    scale.threads = value("--threads")
                        .parse()
                        .expect("--threads takes a number")
                }
                "--out" => scale.out_dir = value("--out"),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--full | --smoke] [--runs N] [--seed S] [--threads T] [--out DIR]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        scale
    }

    /// Output path under the results directory.
    pub fn out_path(&self, file: &str) -> String {
        format!("{}/{}", self.out_dir, file)
    }
}

/// The protocol under test with the paper's empirical configuration.
pub fn paper_protocol() -> DynamicSizeCounting {
    DynamicSizeCounting::new(DscConfig::empirical())
}

/// Starts a [`Sweep`] of `protocol` preconfigured from `scale`
/// (runs per cell, master seed, worker threads).
pub fn sweep_of<P>(scale: &Scale, protocol: P) -> Sweep<P>
where
    P: pp_model::SizeEstimator + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    Sweep::new(protocol)
        .runs(scale.runs)
        .master_seed(scale.seed)
        .threads(scale.threads)
}

/// Runs `scale.runs` independent DSC experiments in parallel
/// (a single-cell [`Sweep`]).
///
/// `init` builds the initial state per agent index (None = fresh);
/// `schedule` is cloned into every run.
pub fn run_many(
    scale: &Scale,
    n: usize,
    horizon: f64,
    snapshot_every: f64,
    schedule: AdversarySchedule,
    init: Option<std::sync::Arc<dyn Fn(usize) -> dsc_core::DscState + Send + Sync>>,
) -> Vec<RunResult> {
    let mut sweep = sweep_of(scale, paper_protocol())
        .populations([n])
        .horizon(horizon)
        .snapshot_every(snapshot_every)
        .schedule("schedule", schedule);
    if let Some(f) = init {
        sweep = sweep.init_with(move |i| f(i));
    }
    let mut results = sweep.run();
    results.cells.swap_remove(0).runs
}

/// Runs `scale.runs` experiments of an arbitrary estimator protocol
/// (a single-cell [`Sweep`]).
pub fn run_many_protocol<P>(
    scale: &Scale,
    protocol: P,
    n: usize,
    horizon: f64,
    snapshot_every: f64,
    schedule: AdversarySchedule,
) -> Vec<RunResult>
where
    P: pp_model::SizeEstimator + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    let mut results = sweep_of(scale, protocol)
        .populations([n])
        .horizon(horizon)
        .snapshot_every(snapshot_every)
        .schedule("schedule", schedule)
        .run();
    results.cells.swap_remove(0).runs
}

/// Formats a float with two decimals for tables.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// `log2(n)` as the reference the figures annotate.
pub fn log2n(n: usize) -> f64 {
    (n.max(2) as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_model::Protocol;

    #[test]
    fn default_scale_is_quick() {
        let s = Scale::default();
        assert!(!s.full);
        assert_eq!(s.runs, 16);
    }

    #[test]
    fn out_path_joins_dir() {
        let s = Scale::default();
        assert_eq!(s.out_path("fig2.csv"), "results/fig2.csv");
    }

    #[test]
    fn run_many_produces_runs_with_distinct_seeds() {
        let scale = Scale {
            runs: 3,
            ..Scale::default()
        };
        let runs = run_many(&scale, 64, 5.0, 1.0, AdversarySchedule::new(), None);
        assert_eq!(runs.len(), 3);
        assert_ne!(runs[0].seed, runs[1].seed);
        assert_eq!(runs[0].snapshots.len(), 6);
    }

    #[test]
    fn paper_protocol_uses_empirical_config() {
        let p = paper_protocol();
        assert_eq!(p.config().tau1, 6);
        assert_eq!(p.initial_state().max, 1);
    }
}
