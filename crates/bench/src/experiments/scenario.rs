//! E13: fault-injection scenarios from the built-in trace catalog.
//!
//! The adversary model (Doty & Eftekhari 2022, the paper's §3 setting)
//! allows arbitrary timed churn; the figures exercise it with single
//! hand-placed events (Fig. 4's one crash). This experiment runs the
//! declarative [`ScenarioTrace`] catalog — ramps, diurnal cycles, flash
//! crowds, correlated crash bursts, and targeted highest-estimate
//! removal campaigns — on the Infection substrate over the batched
//! backend, and reports whether the epidemic re-covers the population
//! once the churn window closes.
//!
//! The targeted `RemoveLargestEstimates` campaign is the interesting row:
//! unlike uniform churn (which scales the infected count proportionally
//! and recovers), a poacher striking the highest estimates removes the
//! infected agents *first* and can extinguish the epidemic outright —
//! the adversarial asymmetry the Doty–Eftekhari model is about. Its
//! `recovered` column is expected to trail the uniform traces.
//!
//! Traces compile per cell through the Sweep seed chain, so rows are
//! bit-identical across `--threads`, same as every other experiment.

use crate::{f2, log2n, Scale};
use pp_analysis::{Table, TableSpec};
use pp_protocols::Infection;
use pp_sim::{BatchedCountSimulator, ScenarioTrace, Sweep, TrackedEstimates, BUILTIN_TRACES};

/// Lemma 4.2 epidemic window for k = 1, in parallel time: the
/// re-convergence budget we grant after the churn window closes.
fn recovery_bound(n: usize) -> f64 {
    4.0 * 2.0 * log2n(n)
}

/// Runs E13, returning the `scenario.csv` table.
///
/// # Panics
///
/// Panics if `--trace` names an unknown trace.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    println!("== Scenario traces: churn catalog on the batched backend ==");
    let names: Vec<&str> = match &scale.trace {
        Some(name) => vec![BUILTIN_TRACES
            .iter()
            .copied()
            .find(|t| t == name)
            .unwrap_or_else(|| panic!("unknown trace {name:?}; built-ins: {BUILTIN_TRACES:?}"))],
        None => BUILTIN_TRACES.to_vec(),
    };
    let traces: Vec<(&str, ScenarioTrace)> = names
        .iter()
        .map(|&n| (n, pp_sim::scenario::builtin(n).expect("catalog name")))
        .collect();
    let churn_end = traces
        .iter()
        .map(|(_, t)| t.end_time())
        .fold(0.0f64, f64::max);

    let populations: Vec<usize> = if scale.smoke {
        vec![1 << 12]
    } else if scale.full {
        vec![1 << 16, 1 << 20, 1 << 24]
    } else {
        vec![1 << 16]
    };

    let mut sweep = Sweep::new(Infection::new())
        .populations(populations)
        .runs(scale.runs)
        .master_seed(scale.seed)
        .threads(scale.threads)
        // Every trace gets the full Lemma 4.2 window after the last
        // possible churn event to re-cover the (possibly grown) population.
        .horizon_with(move |n| churn_end + recovery_bound(4 * n) + 1.0)
        .snapshot_every(1.0)
        .init_counts(|n| vec![n - 1, 1]);
    for (name, trace) in &traces {
        sweep = sweep.scenario(*name, trace.clone());
    }
    let results = sweep
        .run_on::<BatchedCountSimulator<_>, _>(TrackedEstimates)
        .expect("the catalog compiles for every population in the grid");

    let mut csv = TableSpec::new(
        "scenario.csv",
        &[
            "trace",
            "n",
            "churn_end_pt",
            "final_n",
            "recovered",
            "runs",
            "mean_recovery_pt",
        ],
    );
    let mut table = Table::new(vec![
        "trace",
        "n",
        "churn end (pt)",
        "final n",
        "recovered",
        "mean recovery (pt)",
    ]);
    for cell in &results.cells {
        let end = traces[cell.schedule_index].1.end_time();
        let horizon = cell
            .runs
            .first()
            .and_then(|r| r.snapshots.last())
            .map_or(0.0, |s| s.parallel_time);
        let mut recovered = 0usize;
        let mut total_recovery = 0.0;
        for run in &cell.runs {
            // First post-churn snapshot with full coverage; a run that
            // never re-covers (a poacher kill) charges the horizon.
            let t = run
                .snapshots
                .iter()
                .find(|s| {
                    s.parallel_time >= end && s.estimates.is_some_and(|e| e.without_estimate == 0)
                })
                .map(|s| s.parallel_time);
            if let Some(t) = t {
                recovered += 1;
                total_recovery += t;
            } else {
                total_recovery += horizon;
            }
        }
        let mean_recovery = total_recovery / cell.runs.len() as f64;
        // All runs of a cell share the compiled schedule, so final_n is
        // per-cell, not per-run.
        let final_n = cell.runs.first().map_or(0, |r| r.final_n);
        table.row(vec![
            cell.schedule.clone(),
            cell.n.to_string(),
            f2(end),
            final_n.to_string(),
            format!("{recovered}/{}", cell.runs.len()),
            f2(mean_recovery),
        ]);
        csv.push(vec![
            cell.schedule.clone(),
            cell.n.to_string(),
            f2(end),
            final_n.to_string(),
            recovered.to_string(),
            cell.runs.len().to_string(),
            f2(mean_recovery),
        ]);
    }
    table.print();
    vec![csv]
}
