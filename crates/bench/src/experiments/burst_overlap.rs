//! E8 / Theorem 2.2: burst/overlap structure of the phase clock.
//!
//! Records every tick (reset) of a converged population and decomposes the
//! log into bursts. Theorem 2.2 predicts, per burst: every agent ticks
//! exactly once; bursts are `Θ(n log n)` interactions apart (round length
//! `≈ τ1·estimate` parallel time); and the tick-free overlap between bursts
//! dominates the burst width (`t_{i+1} − t_i ≥ 3c·n log n` vs bursts of
//! width `2c·n log n`).
//!
//! The same analysis runs on the non-uniform mod-m baseline clock — the
//! paper's uniform clock should match its structure without knowing n.

use crate::{f2, log2n, Scale};
use pp_analysis::{write_csv, ClockDecomposition, ClockVerdict, Table};
use pp_model::{Protocol, TickProtocol};
use pp_protocols::ModMClock;
use pp_sim::{Simulator, TickRecorder};

fn clock_verdict<P>(
    protocol: P,
    n: usize,
    warmup: f64,
    horizon: f64,
    seed: u64,
) -> Option<ClockVerdict>
where
    P: Protocol + TickProtocol,
{
    let mut sim = Simulator::with_observer(protocol, n, seed, TickRecorder::new());
    sim.run_parallel_time(warmup);
    sim.observer_mut().clear();
    sim.run_parallel_time(horizon);
    let events = sim.observer().events().to_vec();
    let d = ClockDecomposition::extract(&events, n);
    ClockVerdict::judge(&d, n)
}

/// Runs E8 and writes `burst_overlap.csv`.
pub fn run(scale: &Scale) {
    let n = if scale.full { 10_000 } else { 1_000 };
    let horizon = if scale.full { 5_000.0 } else { 2_000.0 };
    let warmup = 300.0;
    println!("== Theorem 2.2: burst/overlap structure (n = {n}) ==");

    let dsc = crate::paper_protocol();
    let modm = ModMClock::for_population(n, 8);

    let mut table = Table::new(vec![
        "clock",
        "perfect bursts",
        "broken",
        "burst width (pt)",
        "overlap (pt)",
        "round (pt)",
        "round/log2 n",
    ]);
    let mut rows = Vec::new();
    let mut judge = |name: &str, v: Option<ClockVerdict>| {
        let Some(v) = v else {
            println!("  {name}: no complete bursts recorded");
            return;
        };
        table.row(vec![
            name.to_string(),
            v.perfect_bursts.to_string(),
            v.broken_bursts.to_string(),
            f2(v.mean_burst_width),
            f2(v.mean_overlap),
            f2(v.mean_round),
            f2(v.mean_round / log2n(n)),
        ]);
        rows.push(vec![
            name.to_string(),
            v.perfect_bursts.to_string(),
            v.broken_bursts.to_string(),
            format!("{}", v.mean_burst_width),
            format!("{}", v.mean_overlap),
            format!("{}", v.mean_round),
        ]);
    };
    judge(
        "DSC (uniform)",
        clock_verdict(dsc, n, warmup, horizon, scale.seed),
    );
    judge(
        "mod-m (non-uniform)",
        clock_verdict(modm, n, warmup, horizon, scale.seed + 1),
    );
    table.print();

    // Sanity note the experiment asserts in EXPERIMENTS.md: the estimate
    // the DSC clock derives its round length from.
    let mut sim = Simulator::tracked(dsc, n, scale.seed + 2);
    sim.run_parallel_time(warmup);
    if let Some(s) = sim.observer().histogram().summary() {
        println!(
            "  DSC estimate after warmup: median {} (nominal round ≈ τ1·median = {})",
            f2(s.median),
            f2(6.0 * s.median)
        );
    }

    write_csv(
        scale.out_path("burst_overlap.csv"),
        &[
            "clock",
            "perfect_bursts",
            "broken_bursts",
            "burst_width_pt",
            "overlap_pt",
            "round_pt",
        ],
        &rows,
    )
    .expect("write burst_overlap.csv");
    println!();
}
