//! E8 / Theorem 2.2: burst/overlap structure of the phase clock.
//!
//! Records every tick (reset) of a converged population and decomposes the
//! log into bursts. Theorem 2.2 predicts, per burst: every agent ticks
//! exactly once; bursts are `Θ(n log n)` interactions apart (round length
//! `≈ τ1·estimate` parallel time); and the tick-free overlap between bursts
//! dominates the burst width (`t_{i+1} − t_i ≥ 3c·n log n` vs bursts of
//! width `2c·n log n`).
//!
//! Both clocks run as single-cell sweeps on the agent-array backend under
//! the tick-recording plan
//! (`run_on::<Simulator<_>, _>(WithTicks(TrackedEstimates))` — the
//! registry's declared `estimates + ticks` recording); warm-up ticks are
//! discarded by interaction index (`t < warmup·n`), which on a static
//! population is exactly the parallel-time cutoff the seed harness
//! implemented by clearing the recorder mid-run.
//!
//! The same analysis runs on the non-uniform mod-m baseline clock — the
//! paper's uniform clock should match its structure without knowing n.

use crate::{f2, log2n, Scale};
use pp_analysis::{ClockDecomposition, ClockVerdict, Table, TableSpec};
use pp_model::{SizeEstimator, TickProtocol};
use pp_protocols::ModMClock;
use pp_sim::{RunResult, ScannedEstimates, Simulator, TickEvent, WithTicks};

fn ticked_run<P>(
    scale: &Scale,
    protocol: P,
    n: usize,
    warmup: f64,
    horizon: f64,
    salt: u64,
) -> RunResult
where
    P: SizeEstimator + TickProtocol + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    let mut results = crate::sweep_of(scale, protocol)
        .runs(1)
        .master_seed(scale.seed ^ salt)
        .populations([n])
        .horizon(warmup + horizon)
        // The snapshot grid is only consumed by the estimate-after-warmup
        // readout; aligning it to the warm-up time puts a snapshot at
        // exactly that instant.
        .snapshot_every(warmup)
        // Scanned estimates (crossover ~0.4 pt, BENCH_hotloop.json);
        // only the tick recorder still hooks every interaction.
        .run_on::<Simulator<_>, _>(WithTicks(ScannedEstimates))
        .expect("the agent-array backend records ticks");
    results.cells.swap_remove(0).runs.swap_remove(0)
}

fn clock_verdict(run: &RunResult, n: usize, warmup: f64) -> Option<ClockVerdict> {
    let cutoff = (warmup * n as f64) as u64;
    let events: Vec<TickEvent> = run
        .ticks
        .iter()
        .copied()
        .filter(|e| e.interaction >= cutoff)
        .collect();
    let d = ClockDecomposition::extract(&events, n);
    ClockVerdict::judge(&d, n)
}

/// Runs E8, returning the `burst_overlap.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let (n, horizon, warmup) = if scale.smoke {
        (128, 500.0, 60.0)
    } else if scale.full {
        (10_000, 5_000.0, 300.0)
    } else {
        (1_000, 2_000.0, 300.0)
    };
    println!("== Theorem 2.2: burst/overlap structure (n = {n}) ==");

    let dsc_run = ticked_run(scale, crate::paper_protocol(), n, warmup, horizon, 0);
    let modm_run = ticked_run(
        scale,
        ModMClock::for_population(n, 8),
        n,
        warmup,
        horizon,
        1,
    );

    let mut table = Table::new(vec![
        "clock",
        "perfect bursts",
        "broken",
        "burst width (pt)",
        "overlap (pt)",
        "round (pt)",
        "round/log2 n",
    ]);
    let mut csv = TableSpec::new(
        "burst_overlap.csv",
        &[
            "clock",
            "perfect_bursts",
            "broken_bursts",
            "burst_width_pt",
            "overlap_pt",
            "round_pt",
        ],
    );
    let mut judge = |name: &str, v: Option<ClockVerdict>| {
        let Some(v) = v else {
            println!("  {name}: no complete bursts recorded");
            return;
        };
        table.row(vec![
            name.to_string(),
            v.perfect_bursts.to_string(),
            v.broken_bursts.to_string(),
            f2(v.mean_burst_width),
            f2(v.mean_overlap),
            f2(v.mean_round),
            f2(v.mean_round / log2n(n)),
        ]);
        csv.push(vec![
            name.to_string(),
            v.perfect_bursts.to_string(),
            v.broken_bursts.to_string(),
            format!("{}", v.mean_burst_width),
            format!("{}", v.mean_overlap),
            format!("{}", v.mean_round),
        ]);
    };
    judge("DSC (uniform)", clock_verdict(&dsc_run, n, warmup));
    judge("mod-m (non-uniform)", clock_verdict(&modm_run, n, warmup));
    table.print();

    // Sanity note the experiment asserts in EXPERIMENTS.md: the estimate
    // the DSC clock derives its round length from, read from the DSC run's
    // own snapshot grid just past the warm-up.
    if let Some(s) = dsc_run
        .snapshots
        .iter()
        .find(|s| s.parallel_time >= warmup)
        .and_then(|s| s.estimates)
    {
        println!(
            "  DSC estimate after warmup: median {} (nominal round ≈ τ1·median = {})",
            f2(s.median),
            f2(6.0 * s.median)
        );
    }

    vec![csv]
}
