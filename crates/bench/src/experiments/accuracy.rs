//! E13: estimate accuracy — the §6 open question, quantified.
//!
//! The paper asks whether averaging (Doty & Eftekhari 2019's trick for
//! `log n ± O(1)` static estimates) can be combined with its dynamic
//! protocol. `dsc-core::averaged` prototypes the combination; this
//! experiment measures what it buys:
//!
//! * **additive error** (|median − log2 n| and the round-to-round jitter)
//!   for plain DSC, averaged DSC with A ∈ {8, 32}, and the static DE19
//!   averaging baseline;
//! * **memory cost** of the extra slots — accuracy is bought with exactly
//!   the bits the plain protocol saves.
//!
//! Ported onto the [`Sweep`](pp_sim::Sweep) engine: where the seed harness
//! drove one sequential simulator per protocol, each variant is now a
//! single-cell sweep of `scale.runs` seeded runs executed in parallel, and
//! the medians are read from the per-run snapshot series (one snapshot per
//! ≈ round, memory recorded per snapshot).

use crate::{f2, log2n, Scale};
use dsc_core::{AveragedDsc, DscConfig};
use pp_analysis::{mean, std_dev, Table, TableSpec};
use pp_model::{MemoryFootprint, SizeEstimator};
use pp_protocols::De19Averaging;
use pp_sim::{ScannedEstimates, Simulator, WithMemory};

struct Row {
    name: String,
    bias: f64,
    jitter: f64,
    mean_bits: f64,
}

/// Warm-up before the first accuracy readout (parallel time).
const WARMUP: f64 = 400.0;
/// Snapshot spacing ≈ one protocol round.
const ROUND: f64 = 130.0;

fn measure<P>(name: &str, protocol: P, n: usize, rounds: u32, scale: &Scale) -> Row
where
    P: SizeEstimator + Clone + Send + Sync,
    P::State: MemoryFootprint + Clone + Send + Sync + 'static,
{
    let results = crate::sweep_of(scale, protocol)
        .populations([n])
        .horizon(WARMUP + ROUND * f64::from(rounds))
        .snapshot_every(ROUND)
        // Scanned, not tracked: snapshots land >= 1 pt apart, far past
        // the ~0.4 pt crossover recorded in BENCH_hotloop.json, and the
        // memory readout scans all agents per snapshot anyway.
        .run_on::<Simulator<_>, _>(WithMemory(ScannedEstimates))
        .expect("the agent-array backend records memory");
    let cell = &results.cells[0];

    // Per run: the post-warm-up series of median estimates.
    let mut biases = Vec::with_capacity(cell.runs.len());
    let mut jitters = Vec::with_capacity(cell.runs.len());
    let mut bits = Vec::with_capacity(cell.runs.len());
    for run in cell.runs() {
        let medians: Vec<f64> = run
            .snapshots
            .iter()
            .filter(|s| s.parallel_time >= WARMUP)
            .filter_map(|s| s.estimates.map(|e| e.median))
            .collect();
        if let Some(m) = mean(&medians) {
            biases.push(m - log2n(n));
        }
        if let Some(sd) = std_dev(&medians) {
            jitters.push(sd);
        }
        if let Some(mem) = run.snapshots.last().and_then(|s| s.memory) {
            bits.push(mem.mean_bits);
        }
    }
    Row {
        name: name.to_string(),
        bias: mean(&biases).unwrap_or(f64::NAN),
        jitter: mean(&jitters).unwrap_or(f64::NAN),
        mean_bits: mean(&bits).unwrap_or(f64::NAN),
    }
}

/// Runs E13, returning the `accuracy.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let n = if scale.full {
        65_536
    } else if scale.smoke {
        256
    } else {
        4_096
    };
    let rounds = if scale.smoke { 3 } else { 12 };
    println!("== Accuracy (§6 open question): averaging the dynamic estimate (n = {n}) ==");
    println!(
        "   log2(n) = {}; plain DSC centers at log2(k·n) = log2 n + 4\n",
        f2(log2n(n))
    );

    let rows = vec![
        measure("DSC plain", crate::paper_protocol(), n, rounds, scale),
        measure(
            "DSC averaged A=8",
            AveragedDsc::new(DscConfig::empirical(), 8),
            n,
            rounds,
            scale,
        ),
        measure(
            "DSC averaged A=32",
            AveragedDsc::new(DscConfig::empirical(), 32),
            n,
            rounds,
            scale,
        ),
        measure("DE19 static A=32", De19Averaging::new(32), n, rounds, scale),
    ];

    let mut table = Table::new(vec![
        "protocol",
        "bias vs log2 n",
        "round jitter σ",
        "bits/agent",
    ]);
    let mut csv = TableSpec::new(
        "accuracy.csv",
        &["protocol", "bias", "jitter", "bits_per_agent"],
    );
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            f2(r.bias),
            f2(r.jitter),
            f2(r.mean_bits),
        ]);
        csv.push(vec![
            r.name.clone(),
            format!("{}", r.bias),
            format!("{}", r.jitter),
            format!("{}", r.mean_bits),
        ]);
    }
    table.print();
    println!(
        "\n(the averaged variants trade bits for stability: σ shrinks ~1/√A while\n the plain protocol keeps the minimal O(log log n)-bit footprint)"
    );
    vec![csv]
}
