//! E13: estimate accuracy — the §6 open question, quantified.
//!
//! The paper asks whether averaging (Doty & Eftekhari 2019's trick for
//! `log n ± O(1)` static estimates) can be combined with its dynamic
//! protocol. `dsc-core::averaged` prototypes the combination; this
//! experiment measures what it buys:
//!
//! * **additive error** (|median − log2 n| and the min–max spread across
//!   rounds) for plain DSC, averaged DSC with A ∈ {8, 32}, and the static
//!   DE19 averaging baseline;
//! * **memory cost** of the extra slots — accuracy is bought with exactly
//!   the bits the plain protocol saves.

use crate::{f2, log2n, Scale};
use dsc_core::{AveragedDsc, DscConfig};
use pp_analysis::{write_csv, Table};
use pp_model::{MemoryFootprint, SizeEstimator};
use pp_protocols::De19Averaging;
use pp_sim::Simulator;

struct Row {
    name: String,
    bias: f64,
    jitter: f64,
    mean_bits: f64,
}

fn measure<P>(name: &str, protocol: P, n: usize, seed: u64) -> Row
where
    P: SizeEstimator,
    P::State: MemoryFootprint,
{
    let mut sim = Simulator::with_seed(protocol, n, seed);
    sim.run_parallel_time(400.0); // converge
    let mut medians = Vec::new();
    for _ in 0..12 {
        sim.run_parallel_time(130.0); // ≈ one round apart
        let mut ests: Vec<f64> = sim
            .states()
            .iter()
            .filter_map(|s| sim.protocol().estimate_log2(s))
            .collect();
        ests.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
        medians.push(ests[ests.len() / 2]);
    }
    let mean = medians.iter().sum::<f64>() / medians.len() as f64;
    let jitter = (medians.iter().map(|m| (m - mean) * (m - mean)).sum::<f64>()
        / medians.len() as f64)
        .sqrt();
    let bits: f64 = sim
        .states()
        .iter()
        .map(|s| f64::from(s.memory_bits()))
        .sum::<f64>()
        / sim.states().len() as f64;
    Row {
        name: name.to_string(),
        bias: mean - log2n(n),
        jitter,
        mean_bits: bits,
    }
}

/// Runs E13 and writes `accuracy.csv`.
pub fn run(scale: &Scale) {
    let n = if scale.full { 65_536 } else { 4_096 };
    println!("== Accuracy (§6 open question): averaging the dynamic estimate (n = {n}) ==");
    println!("   log2(n) = {}; plain DSC centers at log2(k·n) = log2 n + 4\n", f2(log2n(n)));

    let rows = vec![
        measure(
            "DSC plain",
            crate::paper_protocol(),
            n,
            scale.seed,
        ),
        measure(
            "DSC averaged A=8",
            AveragedDsc::new(DscConfig::empirical(), 8),
            n,
            scale.seed + 1,
        ),
        measure(
            "DSC averaged A=32",
            AveragedDsc::new(DscConfig::empirical(), 32),
            n,
            scale.seed + 2,
        ),
        measure(
            "DE19 static A=32",
            De19Averaging::new(32),
            n,
            scale.seed + 3,
        ),
    ];

    let mut table = Table::new(vec!["protocol", "bias vs log2 n", "round jitter σ", "bits/agent"]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(vec![
            r.name.clone(),
            f2(r.bias),
            f2(r.jitter),
            f2(r.mean_bits),
        ]);
        csv.push(vec![
            r.name.clone(),
            format!("{}", r.bias),
            format!("{}", r.jitter),
            format!("{}", r.mean_bits),
        ]);
    }
    table.print();
    println!(
        "\n(the averaged variants trade bits for stability: σ shrinks ~1/√A while\n the plain protocol keeps the minimal O(log log n)-bit footprint)"
    );
    write_csv(
        &scale.out_path("accuracy.csv"),
        &["protocol", "bias", "jitter", "bits_per_agent"],
        &csv,
    )
    .expect("write accuracy.csv");
    println!();
}
