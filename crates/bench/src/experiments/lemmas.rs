//! E11: substrate validation against the paper's lemmas.
//!
//! * **Lemma 4.1** — the maximum of `k·n` GRVs lies in
//!   `[0.5·log2 n, 2(k+1)·log2 n]` with probability `1 − O(n^{-k})`.
//! * **Lemma 4.2** — an epidemic finishes within `4(k+1)·n·log n`
//!   interactions with probability `1 − O(n^{-k})`.
//! * **Lemma 4.3** — CHVP's maximum drops by `Δ` within
//!   `7n(Δ + k log n)` interactions w.h.p.
//! * **Lemma 4.4** — CHVP's minimum is at least `m − 12(Δ + k log n)`
//!   after `7n(Δ + k log n)` interactions w.h.p.
//!
//! Each row reports the observed statistic and the lemma's bound; the
//! observed violation count should be zero at these scales.

use crate::{f2, log2n, Scale};
use pp_analysis::{write_csv, Table};
use pp_model::grv;
use pp_protocols::{BoundedChvp, Infection};
use pp_sim::CountSimulator;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs E11 and writes `lemmas.csv`.
pub fn run(scale: &Scale) {
    println!("== Substrate validation: Lemmas 4.1–4.4 ==");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let trials = if scale.full { 500 } else { 100 };

    // Lemma 4.1.
    println!("-- Lemma 4.1: max of k·n GRVs in [0.5 log n, 2(k+1) log n] --");
    let mut table = Table::new(vec![
        "n",
        "k",
        "observed min",
        "observed max",
        "bound lo",
        "bound hi",
        "violations",
    ]);
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    for exp in [8u32, 12, 16] {
        let n = 1u64 << exp;
        let k = 2u32;
        let lo = 0.5 * log2n(n as usize);
        let hi = 2.0 * (k as f64 + 1.0) * log2n(n as usize);
        let mut omin = f64::INFINITY;
        let mut omax: f64 = 0.0;
        let mut violations = 0;
        for _ in 0..trials {
            let m = f64::from(grv::grv_max(k * n as u32, &mut rng));
            omin = omin.min(m);
            omax = omax.max(m);
            if m < lo || m > hi {
                violations += 1;
            }
        }
        table.row(vec![
            format!("2^{exp}"),
            k.to_string(),
            f2(omin),
            f2(omax),
            f2(lo),
            f2(hi),
            violations.to_string(),
        ]);
        rows.push(vec![
            "lemma4.1".into(),
            n.to_string(),
            f2(omin),
            f2(omax),
            violations.to_string(),
        ]);
    }
    table.print();

    // Lemma 4.2: epidemic completion time on the count simulator.
    println!("-- Lemma 4.2: epidemic completes within 4(k+1)·log n parallel time (k = 1) --");
    let mut table = Table::new(vec![
        "n",
        "mean completion (pt)",
        "bound (pt)",
        "violations",
    ]);
    let reps = if scale.full { 20 } else { 5 };
    for exp in [10u32, 14, 18] {
        let n = 1u64 << exp;
        let bound = 4.0 * 2.0 * log2n(n as usize);
        let mut total = 0.0;
        let mut violations = 0;
        for rep in 0..reps {
            let mut sim = CountSimulator::from_counts(
                Infection::new(),
                vec![n - 1, 1],
                scale.seed ^ (u64::from(exp) << 32) ^ rep,
            );
            // Step until complete, tracking parallel time.
            while sim.count(1) < n {
                sim.step_n(n / 10 + 1);
                if sim.parallel_time() > 10.0 * bound {
                    break;
                }
            }
            if sim.parallel_time() > bound {
                violations += 1;
            }
            total += sim.parallel_time();
        }
        table.row(vec![
            format!("2^{exp}"),
            f2(total / reps as f64),
            f2(bound),
            violations.to_string(),
        ]);
        rows.push(vec![
            "lemma4.2".into(),
            n.to_string(),
            f2(total / reps as f64),
            f2(bound),
            violations.to_string(),
        ]);
    }
    table.print();

    // Lemmas 4.3 / 4.4 on bounded CHVP.
    println!("-- Lemmas 4.3/4.4: CHVP max-drop and min-catch-up windows (k = 2) --");
    let mut table = Table::new(vec![
        "n",
        "max after budget",
        "4.3 target (<=)",
        "min after budget",
        "4.4 bound (>=)",
    ]);
    let k = 2.0;
    for exp in [10u32, 14] {
        let n = 1u64 << exp;
        let m = 400u32;
        let delta = 60.0;
        let window = delta + k * log2n(n as usize);
        let budget = (7.0 * n as f64 * window) as u64;
        // 4.3: all start at m; after the budget the max dropped by ≥ Δ.
        let mut counts = vec![0u64; m as usize + 1];
        counts[m as usize] = n;
        let mut sim = CountSimulator::from_counts(BoundedChvp::new(m), counts, scale.seed + 7);
        sim.step_n(budget);
        let max_after = sim.max_occupied().unwrap() as f64;
        // 4.4: one agent at m, the rest at 0; after the budget the min is
        // within 12(Δ + k log n) of m.
        let mut counts = vec![0u64; m as usize + 1];
        counts[0] = n - 1;
        counts[m as usize] = 1;
        let mut sim = CountSimulator::from_counts(BoundedChvp::new(m), counts, scale.seed + 8);
        sim.step_n(budget);
        let min_after = sim.min_occupied().unwrap() as f64;
        let bound_44 = f64::from(m) - 12.0 * window;
        table.row(vec![
            format!("2^{exp}"),
            f2(max_after),
            f2(f64::from(m) - delta),
            f2(min_after),
            f2(bound_44),
        ]);
        rows.push(vec![
            "lemma4.3/4.4".into(),
            n.to_string(),
            f2(max_after),
            f2(min_after),
            f2(bound_44),
        ]);
    }
    table.print();

    write_csv(
        scale.out_path("lemmas.csv"),
        &["lemma", "n", "a", "b", "c"],
        &rows,
    )
    .expect("write lemmas.csv");
    println!();
}
