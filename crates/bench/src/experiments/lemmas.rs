//! E11: substrate validation against the paper's lemmas.
//!
//! * **Lemma 4.1** — the maximum of `k·n` GRVs lies in
//!   `[0.5·log2 n, 2(k+1)·log2 n]` with probability `1 − O(n^{-k})`.
//! * **Lemma 4.2** — an epidemic finishes within `4(k+1)·n·log n`
//!   interactions with probability `1 − O(n^{-k})`.
//! * **Lemma 4.3** — CHVP's maximum drops by `Δ` within
//!   `7n(Δ + k log n)` interactions w.h.p.
//! * **Lemma 4.4** — CHVP's minimum is at least `m − 12(Δ + k log n)`
//!   after `7n(Δ + k log n)` interactions w.h.p.
//!
//! Each row reports the observed statistic and the lemma's bound; the
//! observed violation count should be zero at these scales.
//!
//! Lemma 4.1 samples GRVs directly (no simulator). Lemmas 4.2–4.4 run on
//! the [`Sweep`] count-based backends — 4.2 through the jump backend
//! (`run_on::<JumpSimulator<_>, _>`: only the epidemic's effective
//! interactions are materialized), 4.3/4.4 through the count backend
//! (`run_on::<CountSimulator<_>, _>`) — so every grid cell runs from one
//! flattened parallel batch with derived seeds instead of the former
//! hand-rolled `CountSimulator` loops, and full-scale populations (2¹⁸
//! and beyond) cost O(#states) memory per run.

use crate::{f2, log2n, Scale};
use pp_analysis::{Table, TableSpec};
use pp_model::grv;
use pp_protocols::{BoundedChvp, Infection};
use pp_sim::{CountSimulator, JumpSimulator, RunResult, Sweep, TrackedEstimates};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Parallel time at which a run's epidemic first covered the population:
/// the first snapshot with no susceptible (estimate-less) agent left.
fn completion_time(run: &RunResult) -> Option<f64> {
    run.snapshots
        .iter()
        .find(|s| s.estimates.is_some_and(|e| e.without_estimate == 0))
        .map(|s| s.parallel_time)
}

/// Runs E11, returning the `lemmas.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    println!("== Substrate validation: Lemmas 4.1-4.4 ==");
    let mut csv = TableSpec::new("lemmas.csv", &["lemma", "n", "a", "b", "c"]);
    let (trials, grv_exps): (u32, &[u32]) = if scale.smoke {
        (20, &[8, 10])
    } else if scale.full {
        (500, &[8, 12, 16])
    } else {
        (100, &[8, 12, 16])
    };

    // Lemma 4.1.
    println!("-- Lemma 4.1: max of k·n GRVs in [0.5 log n, 2(k+1) log n] --");
    let mut table = Table::new(vec![
        "n",
        "k",
        "observed min",
        "observed max",
        "bound lo",
        "bound hi",
        "violations",
    ]);
    let mut rng = SmallRng::seed_from_u64(scale.seed);
    for &exp in grv_exps {
        let n = 1u64 << exp;
        let k = 2u32;
        let lo = 0.5 * log2n(n as usize);
        let hi = 2.0 * (k as f64 + 1.0) * log2n(n as usize);
        let mut omin = f64::INFINITY;
        let mut omax: f64 = 0.0;
        let mut violations = 0;
        for _ in 0..trials {
            let m = f64::from(grv::grv_max(k * n as u32, &mut rng));
            omin = omin.min(m);
            omax = omax.max(m);
            if m < lo || m > hi {
                violations += 1;
            }
        }
        table.row(vec![
            format!("2^{exp}"),
            k.to_string(),
            f2(omin),
            f2(omax),
            f2(lo),
            f2(hi),
            violations.to_string(),
        ]);
        csv.push(vec![
            "lemma4.1".into(),
            n.to_string(),
            f2(omin),
            f2(omax),
            violations.to_string(),
        ]);
    }
    table.print();

    // Lemma 4.2: epidemic completion time, swept on the event-jump engine
    // (one infected agent among n; only effective interactions cost time).
    println!("-- Lemma 4.2: epidemic completes within 4(k+1)·log n parallel time (k = 1) --");
    let mut table = Table::new(vec![
        "n",
        "mean completion (pt)",
        "bound (pt)",
        "violations",
    ]);
    let (reps, epi_exps): (usize, &[u32]) = if scale.smoke {
        (2, &[8, 10])
    } else if scale.full {
        (20, &[10, 14, 18])
    } else {
        (5, &[10, 14, 18])
    };
    let bound_of = |n: usize| 4.0 * 2.0 * log2n(n);
    let results = Sweep::new(Infection::new())
        .populations(epi_exps.iter().map(|&e| 1usize << e))
        .runs(reps)
        .master_seed(scale.seed)
        .threads(scale.threads)
        .horizon_with(move |n| 10.0 * bound_of(n))
        .snapshot_every(1.0)
        .init_counts(|n| vec![n - 1, 1])
        .run_on::<JumpSimulator<_>, _>(TrackedEstimates)
        .expect("a static epidemic grid fits the jump backend");
    for (exp, cell) in epi_exps.iter().zip(results.cells.iter()) {
        let n = cell.n;
        let bound = bound_of(n);
        let mut total = 0.0;
        let mut violations = 0;
        for run in &cell.runs {
            // The jump engine always finishes the epidemic within the
            // 10×bound horizon; treat a (never observed) incompletion as
            // a violation at the horizon.
            let t = completion_time(run).unwrap_or(10.0 * bound);
            if t > bound {
                violations += 1;
            }
            total += t;
        }
        table.row(vec![
            format!("2^{exp}"),
            f2(total / cell.runs.len() as f64),
            f2(bound),
            violations.to_string(),
        ]);
        csv.push(vec![
            "lemma4.2".into(),
            n.to_string(),
            f2(total / cell.runs.len() as f64),
            f2(bound),
            violations.to_string(),
        ]);
    }
    table.print();

    // Lemmas 4.3 / 4.4 on bounded CHVP, swept on the count engine. The
    // snapshot summaries of a count-based sweep report the min/max
    // *occupied value* (BoundedChvp's estimate is its countdown value),
    // which is exactly the statistic both lemmas bound.
    println!("-- Lemmas 4.3/4.4: CHVP max-drop and min-catch-up windows (k = 2) --");
    let mut table = Table::new(vec![
        "n",
        "max after budget",
        "4.3 target (<=)",
        "min after budget",
        "4.4 bound (>=)",
    ]);
    let k = 2.0;
    let (chvp_exps, m, delta): (&[u32], u32, f64) = if scale.smoke {
        (&[8], 100, 30.0)
    } else {
        (&[10, 14], 400, 60.0)
    };
    let window_of = move |n: usize| delta + k * log2n(n);
    // Budget: 7n(Δ + k log n) interactions = 7(Δ + k log n) parallel time.
    let chvp_sweep = |init: fn(u64, u32) -> Vec<u64>, seed: u64| {
        Sweep::new(BoundedChvp::new(m))
            .populations(chvp_exps.iter().map(|&e| 1usize << e))
            .runs(1)
            .master_seed(seed)
            .threads(scale.threads)
            .horizon_with(move |n| 7.0 * window_of(n))
            .snapshot_every(1.0)
            .init_counts(move |n| init(n, m))
            .run_on::<CountSimulator<_>, _>(TrackedEstimates)
            .expect("a counts-initialized grid fits the count backend")
    };
    // 4.3: all start at m; after the budget the max dropped by ≥ Δ.
    let drop_results = chvp_sweep(
        |n, m| {
            let mut counts = vec![0u64; m as usize + 1];
            counts[m as usize] = n;
            counts
        },
        scale.seed + 7,
    );
    // 4.4: one agent at m, the rest at 0; after the budget the min is
    // within 12(Δ + k log n) of m.
    let catchup_results = chvp_sweep(
        |n, m| {
            let mut counts = vec![0u64; m as usize + 1];
            counts[0] = n - 1;
            counts[m as usize] = 1;
            counts
        },
        scale.seed + 8,
    );
    for (exp, (drop_cell, catch_cell)) in chvp_exps
        .iter()
        .zip(drop_results.cells.iter().zip(catchup_results.cells.iter()))
    {
        let n = drop_cell.n;
        let final_summary = |run: &RunResult| {
            run.snapshots
                .last()
                .and_then(|s| s.estimates)
                .expect("bounded CHVP agents always report a value")
        };
        let max_after = final_summary(&drop_cell.runs[0]).max;
        let min_after = final_summary(&catch_cell.runs[0]).min;
        let bound_44 = f64::from(m) - 12.0 * window_of(n);
        table.row(vec![
            format!("2^{exp}"),
            f2(max_after),
            f2(f64::from(m) - delta),
            f2(min_after),
            f2(bound_44),
        ]);
        csv.push(vec![
            "lemma4.3/4.4".into(),
            n.to_string(),
            f2(max_after),
            f2(min_after),
            f2(bound_44),
        ]);
    }
    table.print();
    vec![csv]
}
