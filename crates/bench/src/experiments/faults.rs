//! E14: fault injection and recovery against the loose-stabilization bound.
//!
//! Loose stabilization (the paper's §2 model, after Doty & Eftekhari,
//! arXiv 2202.12864) promises recovery from *any* reachable
//! configuration — not just population churn, which the scenario
//! experiment already covers, but corrupted agent *state*. This
//! experiment injects the fault catalog of `pp_sim::fault` into the full
//! DSC protocol and times how long the population estimate stays outside
//! the Lemma 4.1 band:
//!
//! * `corrupt_random` — a seeded 10% of agents get randomized
//!   resets/bit-flips mid-run ([`Corruptible`](pp_model::Corruptible)).
//! * `corrupt_agents` — the same corruption pinned to named agent
//!   indices (the reproducible "these exact nodes glitched" case).
//! * `adversarial_start` — every agent starts corrupted: the
//!   arbitrary-initial-configuration test loose stabilization is defined
//!   by, measured from interaction 0.
//! * `byzantine` — a 1/16 fraction of agents are pinned liars
//!   ([`Byzantine`]) that answer every
//!   interaction with a frozen state and report no estimate; the honest
//!   majority then absorbs the same 10% corruption. Liars are *planted*
//!   (initial configuration), never injected — a persistent liar is a
//!   standing fault, and loose stabilization only promises recovery
//!   after faults stop.
//! * `infection_corrupt` — the same randomized corruption on the count
//!   backend (Infection substrate), recovery read from snapshot coverage
//!   (count backends carry no per-agent recovery observer).
//!
//! The bound column is Theorem 2.3's countdown-dominated recovery window.
//! A corrupted `max ≤ 64` (the representable cap: `4k` with `k = 16` GRVs)
//! spreads epidemically and arms a `τ1·64` countdown; the countdown must
//! expire once to flush `max` and once more to flush the `last_max` it
//! left behind, and each synchronized wrap burst re-arms it mid-flush
//! (Algorithm 2 line 6 re-ups `time` from the *old* max), so the flush is
//! a small constant number of `τ1·64` rounds — measured ≈ 5.3, charged 8
//! — plus the Lemma 4.2 epidemic window to re-converge. The corruption
//! cap is a protocol constant, so the whole window is `O(1) + O(log n)`:
//! the paper's O(log n) holding bound with a constant countdown surcharge.
//! The infection row has no countdown, so it gets the bare Lemma 4.2
//! epidemic window `8·log2 n`.
//!
//! Every grid runs resiliently ([`pp_sim::Sweep::run_faulted_on`]) under
//! a 3× interaction budget, and the per-cell outcome tallies (completed /
//! failed / panicked / budget-exceeded) are part of the CSV schema — the
//! partial-results contract the resilient executor adds is itself under
//! test here.

use crate::{f2, log2n, paper_protocol, sweep_of, Scale};
use pp_analysis::{outcome_columns, recovery_after, RecoveryReadout, Table, TableSpec};
use pp_model::Protocol;
use pp_protocols::{Byzantine, ByzantineState, Infection};
use pp_sim::{
    CountSimulator, FaultPlan, ResiliencePolicy, ResilientResults, ScannedEstimates, Simulator,
    TrackedEstimates, WithRecovery,
};

/// Fraction of the population corrupted by the randomized injections.
const CORRUPT_FRACTION: f64 = 0.10;

/// Lemma 4.1 band factors for the recovery observer: recovered means
/// every reporting agent's estimate is inside `[0.5, 4]·log2 n` — the
/// same band E2 (`convergence`) converges into. The factor-4 ceiling is
/// not generosity: with `k = 16` GRVs per agent the natural estimate
/// concentrates near `log2(n·k) = log2 n + 4`, so a tighter band would
/// flag steady-state fluctuation as a fault.
const BAND: (f64, f64) = (0.5, 4.0);

/// Theorem 2.3 recovery window after a bounded state corruption: the
/// corrupted maxima (≤ 64, the representable cap the
/// [`Corruptible`](pp_model::Corruptible) contract stays inside) arm a
/// `τ1·64` countdown that re-ups itself at every synchronized wrap burst
/// until both `max` and `last_max` have flushed — measured ≈ 5.3 rounds
/// at n = 2^8, charged 8 — then the Lemma 4.2 epidemic window
/// re-converges the estimate.
fn corruption_bound(n: usize) -> f64 {
    let tau1 = paper_protocol().config().tau1 as f64;
    8.0 * tau1 * 64.0 + epidemic_bound(n)
}

/// Lemma 4.2 epidemic window: the re-convergence budget for faults with
/// no countdown to serve (the infection substrate).
fn epidemic_bound(n: usize) -> f64 {
    4.0 * 2.0 * log2n(n)
}

/// The resilience policy every grid here runs under: 3× the interactions
/// an exact-horizon run needs, no retries (all faults here are seeded and
/// deterministic).
fn policy() -> ResiliencePolicy {
    ResiliencePolicy {
        budget_factor: Some(3.0),
        retries: 0,
    }
}

/// One scenario's grid plus how to read recovery out of it.
struct Readout {
    scenario: &'static str,
    backend: &'static str,
    results: ResilientResults,
    /// Parallel time of the injection recovery is measured from (the same
    /// for every cell: fault plans, like adversary schedules, are one
    /// fixed timeline applied across the whole grid).
    inject_pt: f64,
    /// Recovery budget granted after the injection.
    bound_pt: fn(usize) -> f64,
    /// Read recovery from snapshot coverage instead of the recovery
    /// observer (count backends).
    from_snapshots: bool,
}

impl Readout {
    fn emit(&self, table: &mut Table, csv: &mut TableSpec) {
        for cell in &self.results.cells {
            let bound = (self.bound_pt)(cell.n);
            // Every grid's horizon is injection + bound + slack, so a
            // censored run charges the full post-injection window.
            let window = bound + SLACK_PT;
            let mut total = 0.0;
            let mut completed = 0usize;
            for run in cell.completed_runs() {
                let readout = if self.from_snapshots {
                    // First post-injection snapshot with full estimate
                    // coverage; a run that never re-covers charges the
                    // whole window.
                    run.snapshots
                        .iter()
                        .find(|s| {
                            s.parallel_time >= self.inject_pt
                                && s.estimates.is_some_and(|e| e.without_estimate == 0)
                        })
                        .map_or(RecoveryReadout::Censored, |s| {
                            RecoveryReadout::Recovered(s.parallel_time - self.inject_pt)
                        })
                } else {
                    // The injection boundary fires at the last interaction
                    // *before* `t·n` crosses, so attribute from one parallel
                    // time unit early (initial convergence is ≥ 10 pt before
                    // the injection at every grid population, so the margin
                    // cannot capture a pre-injection transition).
                    let at = (self.inject_pt * cell.n as f64) as u64;
                    recovery_after(run, at.saturating_sub(cell.n as u64), cell.n)
                };
                total += readout.charged(window);
                completed += 1;
            }
            let mean = total / completed.max(1) as f64;
            let summary = cell.summary();
            let within = completed > 0 && mean <= bound;
            table.row(vec![
                self.scenario.to_string(),
                cell.n.to_string(),
                self.backend.to_string(),
                format!("{}/{}", summary.completed, summary.total()),
                f2(mean),
                f2(bound),
                if within { "yes" } else { "NO" }.to_string(),
            ]);
            let [c, f, p, b] = outcome_columns(summary);
            csv.push(vec![
                self.scenario.to_string(),
                cell.n.to_string(),
                self.backend.to_string(),
                c,
                f,
                p,
                b,
                cell.outcomes.len().to_string(),
                f2(mean),
                f2(bound),
                within.to_string(),
            ]);
        }
    }
}

/// Horizon slack past the recovery bound, so a within-bound recovery is
/// never cut off by the end of the run.
const SLACK_PT: f64 = 2.0;

/// Runs E14, returning the `faults.csv` table.
///
/// # Panics
///
/// Panics if a fault plan fails to compile for the configured grid (a
/// bug in this experiment, not a runtime fault).
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    println!("== Fault injection: recovery vs the loose-stabilization bound ==");
    let populations: Vec<usize> = if scale.smoke {
        vec![1 << 8]
    } else if scale.full {
        vec![1 << 12, 1 << 14]
    } else {
        vec![1 << 10]
    };
    // One injection time for the whole grid: comfortably after the
    // largest population's O(log n) initial convergence.
    let t_inj = 3.0 * log2n(*populations.last().expect("populations set"));
    let dsc_horizon = move |n: usize| t_inj + corruption_bound(n) + SLACK_PT;
    // Scanned estimates (crossover ~0.4 pt, BENCH_hotloop.json); the
    // recovery observer still hooks every interaction for its readout.
    let recording = || WithRecovery::band(ScannedEstimates, BAND.0, BAND.1);

    let dsc_grid = || {
        sweep_of(scale, paper_protocol())
            .populations(populations.clone())
            .horizon_with(dsc_horizon)
            .snapshot_every(1.0)
    };
    let mut readouts = Vec::new();

    // Randomized mid-run corruption of a seeded 10% of agents.
    let plan = FaultPlan::new(scale.seed).corrupt_random(t_inj, CORRUPT_FRACTION);
    readouts.push(Readout {
        scenario: "corrupt_random",
        backend: "agent-array",
        results: dsc_grid()
            .run_faulted_on::<Simulator<_>, _>(&plan, recording(), policy())
            .expect("corrupt_random compiles for every population"),
        inject_pt: t_inj,
        bound_pt: corruption_bound,
        from_snapshots: false,
    });

    // The same corruption pinned to named agents (indices chosen valid at
    // every grid population).
    let agents: Vec<usize> = (0..(populations[0] / 16).max(1)).collect();
    let plan = FaultPlan::new(scale.seed).corrupt_agents(t_inj, agents);
    readouts.push(Readout {
        scenario: "corrupt_agents",
        backend: "agent-array",
        results: dsc_grid()
            .run_faulted_on::<Simulator<_>, _>(&plan, recording(), policy())
            .expect("corrupt_agents compiles for every population"),
        inject_pt: t_inj,
        bound_pt: corruption_bound,
        from_snapshots: false,
    });

    // Arbitrary initial configuration: the defining loose-stabilization
    // test, measured from interaction 0.
    let plan = FaultPlan::new(scale.seed).adversarial_start();
    readouts.push(Readout {
        scenario: "adversarial_start",
        backend: "agent-array",
        results: dsc_grid()
            .run_faulted_on::<Simulator<_>, _>(&plan, recording(), policy())
            .expect("adversarial_start compiles for every population"),
        inject_pt: 0.0,
        bound_pt: corruption_bound,
        from_snapshots: false,
    });

    // Pinned liars (planted, not injected) + the randomized corruption:
    // the honest majority must still recover around them. Liars answer
    // interactions with a frozen fresh state and report no estimate, so
    // the recovery band tracks honest agents only.
    let plan = FaultPlan::new(scale.seed).corrupt_random(t_inj, CORRUPT_FRACTION);
    let honest = paper_protocol().initial_state();
    readouts.push(Readout {
        scenario: "byzantine",
        backend: "agent-array",
        results: sweep_of(scale, Byzantine::new(paper_protocol()))
            .populations(populations.clone())
            .horizon_with(dsc_horizon)
            .snapshot_every(1.0)
            .init_with_n(move |n, i| {
                if i < (n / 16).max(1) {
                    ByzantineState::Liar(honest)
                } else {
                    ByzantineState::Honest(honest)
                }
            })
            .run_faulted_on::<Simulator<_>, _>(&plan, recording(), policy())
            .expect("the byzantine plan compiles for every population"),
        inject_pt: t_inj,
        bound_pt: corruption_bound,
        from_snapshots: false,
    });

    // The count backend takes the same randomized corruption through its
    // own inject hook (no agent indices, no recovery observer): recovery
    // is read from snapshot estimate coverage instead.
    let inf_horizon = move |n: usize| t_inj + epidemic_bound(n) + SLACK_PT;
    let plan = FaultPlan::new(scale.seed).corrupt_random(t_inj, 0.5);
    readouts.push(Readout {
        scenario: "infection_corrupt",
        backend: "count",
        results: sweep_of(scale, Infection::new())
            .populations(populations.clone())
            .horizon_with(inf_horizon)
            .snapshot_every(1.0)
            .init_counts(|n| vec![n - 1, 1])
            .run_faulted_on::<CountSimulator<_>, _>(&plan, TrackedEstimates, policy())
            .expect("infection_corrupt compiles for every population"),
        inject_pt: t_inj,
        bound_pt: epidemic_bound,
        from_snapshots: true,
    });

    let mut csv = TableSpec::new(
        "faults.csv",
        &[
            "scenario",
            "n",
            "backend",
            "completed",
            "failed",
            "panicked",
            "budget_exceeded",
            "runs",
            "mean_recovery_pt",
            "bound_pt",
            "within_bound",
        ],
    );
    let mut table = Table::new(vec![
        "scenario",
        "n",
        "backend",
        "completed",
        "mean recovery (pt)",
        "bound (pt)",
        "within",
    ]);
    for readout in &readouts {
        readout.emit(&mut table, &mut csv);
    }
    table.print();
    vec![csv]
}
