//! E3 / Figure 4: adaptation to a population crash.
//!
//! Paper setup: n ∈ {10^3, 10^4, 10^5, 10^6}; at parallel time 1350 the
//! adversary removes all but 500 agents; 5000 parallel time horizon.
//!
//! Expected shape (paper Fig. 4): estimates converge to ≈ `log2(k·n)`,
//! stay flat until t = 1350, then drop within a few rounds towards
//! ≈ `log2(k·500) ≈ 13`, with wider min/max bands after the crash (the
//! decimated population deviates more — the paper notes this matches its
//! Fig. 3 findings). The drop is bigger, hence more visible, for larger n.

use crate::{f2, log2n, Scale};
use pp_analysis::{render_band, write_csv, PooledSeries};
use pp_sim::{AdversarySchedule, PopulationEvent};

/// The paper's crash time and survivor count.
const CRASH_AT: f64 = 1_350.0;
const SURVIVORS: usize = 500;

/// Runs E3 and writes `fig4_nE.csv` per population size.
pub fn run(scale: &Scale) {
    let exps: &[u32] = if scale.full { &[3, 4, 5, 6] } else { &[3, 4] };
    let horizon = if scale.full { 5_000.0 } else { 3_000.0 };
    println!(
        "== Fig. 4: all but {SURVIVORS} agents removed at t = {CRASH_AT} ({} runs) ==",
        scale.runs
    );

    for &exp in exps {
        let n = 10usize.pow(exp);
        let schedule = AdversarySchedule::new().at(CRASH_AT, PopulationEvent::ResizeTo(SURVIVORS));
        let runs = crate::run_many(scale, n, horizon, 5.0, schedule, None);
        let pooled = PooledSeries::pool(&runs);

        let times: Vec<f64> = pooled.points.iter().map(|p| p.parallel_time).collect();
        let mins: Vec<f64> = pooled.points.iter().map(|p| p.min).collect();
        let medians: Vec<f64> = pooled.points.iter().map(|p| p.median).collect();
        let maxes: Vec<f64> = pooled.points.iter().map(|p| p.max).collect();
        print!(
            "{}",
            render_band(
                &format!(
                    "n = 10^{exp}  [log2(n) = {}, post-crash log2({SURVIVORS}) = {}]",
                    f2(log2n(n)),
                    f2(log2n(SURVIVORS))
                ),
                &times,
                &mins,
                &medians,
                &maxes
            )
        );

        // Quantify the drop: median estimate just before the crash vs at the end.
        let before = pooled
            .window(CRASH_AT - 200.0, CRASH_AT)
            .last()
            .map(|p| p.median);
        let after = pooled.points.last().map(|p| p.median);
        if let (Some(b), Some(a)) = (before, after) {
            println!(
                "  median before crash: {}  after: {}  (drop {})",
                f2(b),
                f2(a),
                f2(b - a)
            );
        }

        let path = scale.out_path(&format!("fig4_n1e{exp}.csv"));
        write_csv(
            &path,
            &["parallel_time", "min", "median", "max", "runs"],
            &pooled.csv_rows(),
        )
        .expect("write fig4 csv");
        println!("  wrote {path}");
    }
    println!();
}
