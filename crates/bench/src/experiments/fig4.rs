//! E3 / Figure 4: adaptation to a population crash.
//!
//! Paper setup: n ∈ {10^3, 10^4, 10^5, 10^6}; at parallel time 1350 the
//! adversary removes all but 500 agents; 5000 parallel time horizon. All
//! population sizes run as one [`Sweep`](pp_sim::Sweep) grid under the
//! crash schedule.
//!
//! Expected shape (paper Fig. 4): estimates converge to ≈ `log2(k·n)`,
//! stay flat until t = 1350, then drop within a few rounds towards
//! ≈ `log2(k·500) ≈ 13`, with wider min/max bands after the crash (the
//! decimated population deviates more — the paper notes this matches its
//! Fig. 3 findings). The drop is bigger, hence more visible, for larger n.

use crate::{f2, log2n, Scale};
use pp_analysis::{render_band, PooledSeries, TableSpec};
use pp_sim::{AdversarySchedule, PopulationEvent};

/// Runs E3, returning one `fig4_nE.csv` table per population size.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    // The paper's crash time and survivor count; the smoke preset shrinks
    // the whole scenario so CI proves the pipeline in milliseconds.
    let (exps, crash_at, survivors, horizon): (&[u32], f64, usize, f64) = if scale.smoke {
        (&[2], 40.0, 16, 150.0)
    } else if scale.full {
        (&[3, 4, 5, 6], 1_350.0, 500, 5_000.0)
    } else {
        (&[3, 4], 1_350.0, 500, 3_000.0)
    };
    println!(
        "== Fig. 4: all but {survivors} agents removed at t = {crash_at} ({} runs) ==",
        scale.runs
    );

    let schedule = AdversarySchedule::new().at(crash_at, PopulationEvent::ResizeTo(survivors));
    let results = crate::sweep_of(scale, crate::paper_protocol())
        .populations(exps.iter().map(|&e| 10usize.pow(e)))
        .schedule("crash", schedule)
        .horizon(horizon)
        .snapshot_every(if scale.smoke { 2.0 } else { 5.0 })
        .run_scanned();

    let mut tables = Vec::new();
    for (&exp, cell) in exps.iter().zip(results.cells_for_schedule("crash")) {
        let pooled = PooledSeries::pool(&cell.runs);

        let times: Vec<f64> = pooled.points.iter().map(|p| p.parallel_time).collect();
        let mins: Vec<f64> = pooled.points.iter().map(|p| p.min).collect();
        let medians: Vec<f64> = pooled.points.iter().map(|p| p.median).collect();
        let maxes: Vec<f64> = pooled.points.iter().map(|p| p.max).collect();
        print!(
            "{}",
            render_band(
                &format!(
                    "n = 10^{exp}  [log2(n) = {}, post-crash log2({survivors}) = {}]",
                    f2(log2n(cell.n)),
                    f2(log2n(survivors))
                ),
                &times,
                &mins,
                &medians,
                &maxes
            )
        );

        // Quantify the drop: median estimate just before the crash vs at the end.
        let before = pooled
            .window(crash_at - 200.0, crash_at)
            .last()
            .map(|p| p.median);
        let after = pooled.points.last().map(|p| p.median);
        if let (Some(b), Some(a)) = (before, after) {
            println!(
                "  median before crash: {}  after: {}  (drop {})",
                f2(b),
                f2(a),
                f2(b - a)
            );
        }

        let mut csv = TableSpec::new(
            format!("fig4_n1e{exp}.csv"),
            &["parallel_time", "min", "median", "max", "runs"],
        );
        for row in pooled.csv_rows() {
            csv.push(row);
        }
        tables.push(csv);
    }
    tables
}
