//! E5 / Theorem 2.1 (convergence): `O(log n̂ + log n)` convergence time.
//!
//! Two sweeps, both on the [`Sweep`](pp_sim::Sweep) grid engine:
//!
//! 1. **initial-estimate sweep** — fixed n, initial estimate n̂ with
//!    `log n̂ ∈ {15, 30, 60, 120, 240}`: convergence time should grow
//!    *linearly* in `log n̂` (the countdown runs at `τ1·log n̂`), the
//!    paper's trade-off against Doty–Eftekhari (whose convergence is
//!    `log log n̂ + log n` — faster under exponential over-estimates,
//!    at a much larger memory cost). Each n̂ needs its own horizon and
//!    initial configuration, so each is a single-cell sweep.
//! 2. **population sweep** — fresh init, n ∈ {2^7 … 2^13}: convergence
//!    time should grow like `log n` (slope ≈ constant per doubling).
//!    One multi-cell sweep: every `(n, run)` task is fanned across the
//!    pool together, so large-n runs never wait on a small-n batch.

use crate::{f2, log2n, Scale};
use pp_analysis::{convergence_time, mean, Band, Table, TableSpec};
use pp_sim::SweepResults;

/// The population sweep as a [`Sweep`](pp_sim::Sweep) over every grid cell
/// at once. Separated from [`run`] so the throughput harness
/// (`BENCH_sweep.json`) can time exactly this workload.
pub fn population_sweep(scale: &Scale, exps: &[u32]) -> SweepResults {
    crate::sweep_of(scale, crate::paper_protocol())
        .populations(exps.iter().map(|&e| 1usize << e))
        .horizon_with(|n| 500.0 + 10.0 * (n.max(2) as f64).log2())
        .snapshot_every(1.0)
        .run_scanned()
}

/// Runs E5, returning the `convergence_nhat.csv` / `convergence_n.csv`
/// tables.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    println!(
        "== Theorem 2.1: convergence time ({} runs/point) ==",
        scale.runs
    );

    // Band: the steady estimate is ≈ log2(k·n) = log2 n + 4; use a generous
    // constant-factor band (validity per §4.1 is far wider still).
    let band_for = |n: usize| Band::around_log_n(n, 0.5, 4.0);

    // Sweep 1: initial estimate.
    let n = if scale.full {
        100_000
    } else if scale.smoke {
        128
    } else {
        2_000
    };
    // All sweep values lie *outside* the validity band (otherwise the
    // convergence time is trivially zero — an over-estimate inside the
    // band is already a valid configuration).
    let estimates: &[u64] = if scale.full {
        &[60, 120, 240, 480, 960]
    } else if scale.smoke {
        &[60]
    } else {
        &[60, 120, 240]
    };
    println!("-- convergence vs initial estimate (n = {n}) --");
    let mut table = Table::new(vec!["log n-hat", "mean conv. time", "per unit"]);
    let mut csv_nhat = TableSpec::new(
        "convergence_nhat.csv",
        &["log_nhat", "mean_convergence_time", "converged_runs"],
    );
    let protocol = crate::paper_protocol();
    for &e0 in estimates {
        let horizon = 40.0 * e0 as f64 + 500.0;
        let results = crate::sweep_of(scale, protocol)
            .populations([n])
            .horizon(horizon)
            .snapshot_every(5.0)
            .init_with(move |_i| protocol.state_with_estimate(e0))
            .run_scanned();
        let times: Vec<f64> = results.cells[0]
            .runs()
            .filter_map(|r| convergence_time(r, band_for(n)))
            .collect();
        let mean_t = mean(&times).unwrap_or(f64::NAN);
        table.row(vec![e0.to_string(), f2(mean_t), f2(mean_t / e0 as f64)]);
        csv_nhat.push(vec![
            e0.to_string(),
            format!("{mean_t}"),
            times.len().to_string(),
        ]);
    }
    table.print();

    // Sweep 2: population size — one grid, one parallel batch.
    let exps: &[u32] = if scale.full {
        &[7, 9, 11, 13, 15, 17]
    } else if scale.smoke {
        &[5, 6]
    } else {
        &[7, 9, 11, 13]
    };
    println!("-- convergence vs population size (fresh init) --");
    let results = population_sweep(scale, exps);
    let mut table = Table::new(vec!["n", "log2 n", "mean conv. time", "per log n"]);
    let mut csv_n = TableSpec::new(
        "convergence_n.csv",
        &["n", "mean_convergence_time", "converged_runs"],
    );
    for (cell, &exp) in results.cells.iter().zip(exps) {
        let n = cell.n;
        debug_assert_eq!(n, 1usize << exp);
        let times: Vec<f64> = cell
            .runs()
            .filter_map(|r| convergence_time(r, band_for(n)))
            .collect();
        let mean_t = mean(&times).unwrap_or(f64::NAN);
        table.row(vec![
            format!("2^{exp}"),
            f2(log2n(n)),
            f2(mean_t),
            f2(mean_t / log2n(n)),
        ]);
        csv_n.push(vec![
            n.to_string(),
            format!("{mean_t}"),
            times.len().to_string(),
        ]);
    }
    table.print();
    vec![csv_nhat, csv_n]
}
