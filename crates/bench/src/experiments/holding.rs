//! E6 / Theorem 2.1 (holding): validity persists for polynomial time.
//!
//! With the paper's `k = 16` the theoretical holding time is `Ω(n^15)` —
//! unobservably long. The experiment therefore reports what *is*
//! observable: over long horizons at small n, the fraction of runs whose
//! validity never breaks (right-censored holding times). Any observed
//! break would be a counterexample signal; the expected outcome is 100%
//! censoring, i.e. every run holds for the entire horizon.
//!
//! All populations run as one [`Sweep`](pp_sim::Sweep) grid: the flat
//! task list keeps every core busy across population sizes instead of
//! draining the pool at each point boundary. The grid runs under the
//! [`pp_sim::ScannedEstimates`] plan — summaries are
//! value-identical to the tracked default, but the long horizons (up to
//! 10⁵ parallel time) pay a per-snapshot scan every 10 time units instead
//! of estimate-tracker bucket updates on every one of the `n` interactions
//! per unit.

use crate::{f2, Scale};
use pp_analysis::{holding_time, Band, Table, TableSpec};
use pp_sim::{ScannedEstimates, Simulator};

/// Runs E6, returning the `holding.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let (ns, horizon): (&[usize], f64) = if scale.smoke {
        (&[32], 300.0)
    } else if scale.full {
        (&[64, 256, 1024], 100_000.0)
    } else {
        (&[64, 256], 20_000.0)
    };
    println!(
        "== Theorem 2.1: holding time (horizon {horizon} parallel time, {} runs) ==",
        scale.runs
    );

    let results = crate::sweep_of(scale, crate::paper_protocol())
        .populations(ns.iter().copied())
        .horizon(horizon)
        .snapshot_every(10.0)
        .run_on::<Simulator<_>, _>(ScannedEstimates)
        .expect("the agent-array backend supports every plan");

    let mut table = Table::new(vec![
        "n",
        "converged",
        "held to horizon",
        "min held (pt)",
        "breaks",
    ]);
    let mut csv = TableSpec::new(
        "holding.csv",
        &["n", "converged", "held_to_horizon", "breaks", "min_held"],
    );
    for cell in results.cells_for_schedule("static") {
        let n = cell.n;
        // The §4.1 validity band (generous; see convergence.rs for the
        // tighter convergence band).
        let band = Band::around_log_n(n, 0.5, 10.0);
        let mut converged = 0usize;
        let mut censored = 0usize;
        let mut breaks = 0usize;
        let mut min_held = f64::INFINITY;
        for r in cell.runs() {
            if let Some(h) = holding_time(r, band) {
                converged += 1;
                min_held = min_held.min(h.held_for);
                if h.censored {
                    censored += 1;
                } else {
                    breaks += 1;
                }
            }
        }
        table.row(vec![
            n.to_string(),
            format!("{converged}/{}", cell.runs.len()),
            format!("{censored}/{converged}"),
            f2(min_held),
            breaks.to_string(),
        ]);
        csv.push(vec![
            n.to_string(),
            converged.to_string(),
            censored.to_string(),
            breaks.to_string(),
            format!("{min_held}"),
        ]);
    }
    table.print();
    vec![csv]
}
