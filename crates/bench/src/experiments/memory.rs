//! E7 / Theorem 2.1 (space): bits per agent.
//!
//! Two claims to check:
//!
//! 1. **shape in n** — after convergence, the paper's protocol stores
//!    `O(log log n)`-bit values (four counters of magnitude `O(log n)`),
//!    while the Doty–Eftekhari baseline stores a *list* of `Θ(log n)`
//!    timers: its footprint grows like `log n · log log n`, visibly
//!    steeper. The crossover claimed in the paper's §2.2 ("once our
//!    protocol is converged it requires an optimal O(log log n) bits …
//!    improving upon \[22\]") should be visible at every n.
//! 2. **shape in s** — the transient footprint scales with `log s` for an
//!    initial over-estimate `s` (the `O(log s)` term), and collapses back
//!    after convergence.
//!
//! Both sweeps run on the agent-array backend under the memory-recording
//! plan (`run_on::<Simulator<_>, _>(WithMemory(TrackedEstimates))`) — the
//! footprint-vs-n comparison as one multi-cell population grid per
//! protocol, the transient-vs-s readout as one seeded single-cell grid per
//! over-estimate — replacing the seed harness's hand-rolled
//! `parallel_map`-over-`Experiment` loops.

use crate::{f2, Scale};
use pp_analysis::{memory_profile, theorem_bound_bits, Table, TableSpec};
use pp_model::{MemoryFootprint, SizeEstimator};
use pp_protocols::De22Counting;
use pp_sim::{ScannedEstimates, Simulator, SweepResults, WithMemory};

fn memory_sweep<P>(scale: &Scale, protocol: P, ns: &[usize], horizon: f64) -> SweepResults
where
    P: SizeEstimator + Clone + Send + Sync,
    P::State: MemoryFootprint + Clone + Send + Sync + 'static,
{
    crate::sweep_of(scale, protocol)
        .runs(scale.runs.min(8))
        .populations(ns.iter().copied())
        .horizon(horizon)
        .snapshot_every(10.0)
        // Scanned, not tracked: 10 pt snapshot grids sit far past the
        // ~0.4 pt crossover recorded in BENCH_hotloop.json, and the
        // memory readout scans all agents per snapshot anyway.
        .run_on::<Simulator<_>, _>(WithMemory(ScannedEstimates))
        .expect("the agent-array backend records memory")
}

/// Runs E7, returning the `memory_n.csv` and `memory_s.csv` tables.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    println!("== Theorem 2.1: memory in bits per agent ==");
    let (exps, horizon): (&[u32], f64) = if scale.smoke {
        (&[6, 8], 120.0)
    } else if scale.full {
        (&[8, 10, 12, 14, 16], 1_000.0)
    } else {
        (&[8, 10, 12], 400.0)
    };
    let ns: Vec<usize> = exps.iter().map(|&e| 1usize << e).collect();
    let warmup = horizon / 2.0;

    println!("-- steady-state footprint vs n (DSC vs Doty–Eftekhari 2022) --");
    let dsc_results = memory_sweep(scale, crate::paper_protocol(), &ns, horizon);
    let de_results = memory_sweep(scale, De22Counting::new(), &ns, horizon);

    let mut table = Table::new(vec![
        "n",
        "DSC max bits",
        "DSC mean bits",
        "DE22 max bits",
        "DE22 mean bits",
        "c(log s+loglog n)",
    ]);
    let mut csv_n = TableSpec::new(
        "memory_n.csv",
        &[
            "n",
            "dsc_max_bits",
            "dsc_mean_bits",
            "de22_max_bits",
            "de22_mean_bits",
        ],
    );
    for ((&exp, dsc_cell), de_cell) in exps
        .iter()
        .zip(dsc_results.cells_for_schedule("static"))
        .zip(de_results.cells_for_schedule("static"))
    {
        let n = dsc_cell.n;
        let dsc: Vec<_> = dsc_cell
            .runs()
            .filter_map(|r| memory_profile(r, warmup))
            .collect();
        let de: Vec<_> = de_cell
            .runs()
            .filter_map(|r| memory_profile(r, warmup))
            .collect();
        let avg = |xs: &[f64]| pp_analysis::mean(xs).unwrap_or(f64::NAN);
        let dsc_max = avg(&dsc.iter().map(|p| p.steady_max_bits).collect::<Vec<_>>());
        let dsc_mean = avg(&dsc.iter().map(|p| p.steady_mean_bits).collect::<Vec<_>>());
        let de_max = avg(&de.iter().map(|p| p.steady_max_bits).collect::<Vec<_>>());
        let de_mean = avg(&de.iter().map(|p| p.steady_mean_bits).collect::<Vec<_>>());
        // Reference shape: the steady state has s = Θ(log n).
        let bound = theorem_bound_bits((exp as u64) * 8, n, 4.0);
        table.row(vec![
            format!("2^{exp}"),
            f2(dsc_max),
            f2(dsc_mean),
            f2(de_max),
            f2(de_mean),
            f2(bound),
        ]);
        csv_n.push(vec![
            n.to_string(),
            format!("{dsc_max}"),
            format!("{dsc_mean}"),
            format!("{de_max}"),
            format!("{de_mean}"),
        ]);
    }
    table.print();

    // Sweep 2: initial over-estimate s. Forgetting an over-estimate takes
    // ≈ 2 rounds of ≈ 15·τ1·s parallel time each (the countdown decays
    // slightly slower than one per parallel time), so the horizon scales
    // with s and "steady" starts well past the forget point.
    let (n, estimates): (usize, &[u64]) = if scale.smoke {
        (64, &[60])
    } else if scale.full {
        (256, &[60, 600, 6_000, 60_000])
    } else {
        (256, &[60, 600, 6_000])
    };
    println!("-- transient footprint vs initial estimate s (n = {n}) --");
    let mut table = Table::new(vec!["s", "peak bits", "steady max bits"]);
    let mut csv_s = TableSpec::new("memory_s.csv", &["s", "peak_bits", "steady_max_bits"]);
    let protocol = crate::paper_protocol();
    for &s in estimates {
        let horizon = 40.0 * s as f64 + 600.0;
        let results = crate::sweep_of(scale, protocol)
            .runs(scale.runs.min(8))
            .master_seed(scale.seed ^ s)
            .populations([n])
            .horizon(horizon)
            .snapshot_every(10.0)
            .init_with(move |_i| protocol.state_with_estimate(s))
            .run_on::<Simulator<_>, _>(WithMemory(ScannedEstimates))
            .expect("the agent-array backend records memory");
        let profiles: Vec<_> = results.cells[0]
            .runs()
            .filter_map(|r| memory_profile(r, horizon * 0.9))
            .collect();
        let peak = pp_analysis::mean(
            &profiles
                .iter()
                .map(|p| f64::from(p.peak_bits))
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN);
        let steady = pp_analysis::mean(
            &profiles
                .iter()
                .map(|p| p.steady_max_bits)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN);
        table.row(vec![s.to_string(), f2(peak), f2(steady)]);
        csv_s.push(vec![s.to_string(), format!("{peak}"), format!("{steady}")]);
    }
    table.print();
    vec![csv_n, csv_s]
}
