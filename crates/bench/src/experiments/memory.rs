//! E7 / Theorem 2.1 (space): bits per agent.
//!
//! Two claims to check:
//!
//! 1. **shape in n** — after convergence, the paper's protocol stores
//!    `O(log log n)`-bit values (four counters of magnitude `O(log n)`),
//!    while the Doty–Eftekhari baseline stores a *list* of `Θ(log n)`
//!    timers: its footprint grows like `log n · log log n`, visibly
//!    steeper. The crossover claimed in the paper's §2.2 ("once our
//!    protocol is converged it requires an optimal O(log log n) bits …
//!    improving upon \[22\]") should be visible at every n.
//! 2. **shape in s** — the transient footprint scales with `log s` for an
//!    initial over-estimate `s` (the `O(log s)` term), and collapses back
//!    after convergence.

use crate::{f2, Scale};
use pp_analysis::{memory_profile, theorem_bound_bits, write_csv, Table};
use pp_model::SizeEstimator;
use pp_protocols::De22Counting;
use pp_sim::runner::run_seed;
use pp_sim::{Experiment, RunResult};
use std::sync::Arc;

fn run_memory<P>(scale: &Scale, protocol: P, n: usize, horizon: f64) -> Vec<RunResult>
where
    P: SizeEstimator + Clone + Send + Sync,
    P::State: pp_model::MemoryFootprint + Clone + Send + Sync,
{
    pp_sim::parallel_map(scale.runs.min(8), scale.threads, move |run| {
        Experiment::new(protocol.clone(), n)
            .seed(run_seed(scale.seed, run))
            .horizon(horizon)
            .snapshot_every(10.0)
            .run_with_memory()
    })
}

/// Runs E7 and writes `memory_n.csv` / `memory_s.csv`.
pub fn run(scale: &Scale) {
    println!("== Theorem 2.1: memory in bits per agent ==");
    let exps: &[u32] = if scale.full {
        &[8, 10, 12, 14, 16]
    } else {
        &[8, 10, 12]
    };
    let horizon = if scale.full { 1_000.0 } else { 400.0 };

    println!("-- steady-state footprint vs n (DSC vs Doty–Eftekhari 2022) --");
    let mut table = Table::new(vec![
        "n",
        "DSC max bits",
        "DSC mean bits",
        "DE22 max bits",
        "DE22 mean bits",
        "c(log s+loglog n)",
    ]);
    let mut rows = Vec::new();
    for &exp in exps {
        let n = 1usize << exp;
        let warmup = horizon / 2.0;
        let dsc_runs = run_memory(scale, crate::paper_protocol(), n, horizon);
        let de_runs = run_memory(scale, De22Counting::new(), n, horizon);
        let dsc: Vec<_> = dsc_runs
            .iter()
            .filter_map(|r| memory_profile(r, warmup))
            .collect();
        let de: Vec<_> = de_runs
            .iter()
            .filter_map(|r| memory_profile(r, warmup))
            .collect();
        let avg = |xs: &[f64]| pp_analysis::mean(xs).unwrap_or(f64::NAN);
        let dsc_max = avg(&dsc.iter().map(|p| p.steady_max_bits).collect::<Vec<_>>());
        let dsc_mean = avg(&dsc.iter().map(|p| p.steady_mean_bits).collect::<Vec<_>>());
        let de_max = avg(&de.iter().map(|p| p.steady_max_bits).collect::<Vec<_>>());
        let de_mean = avg(&de.iter().map(|p| p.steady_mean_bits).collect::<Vec<_>>());
        // Reference shape: the steady state has s = Θ(log n).
        let bound = theorem_bound_bits((exp as u64) * 8, n, 4.0);
        table.row(vec![
            format!("2^{exp}"),
            f2(dsc_max),
            f2(dsc_mean),
            f2(de_max),
            f2(de_mean),
            f2(bound),
        ]);
        rows.push(vec![
            n.to_string(),
            format!("{dsc_max}"),
            format!("{dsc_mean}"),
            format!("{de_max}"),
            format!("{de_mean}"),
        ]);
    }
    table.print();
    write_csv(
        scale.out_path("memory_n.csv"),
        &[
            "n",
            "dsc_max_bits",
            "dsc_mean_bits",
            "de22_max_bits",
            "de22_mean_bits",
        ],
        &rows,
    )
    .expect("write memory_n.csv");

    // Sweep 2: initial over-estimate s. Forgetting an over-estimate takes
    // ≈ 2 rounds of ≈ 15·τ1·s parallel time each (the countdown decays
    // slightly slower than one per parallel time), so the horizon scales
    // with s and "steady" starts well past the forget point.
    println!("-- transient footprint vs initial estimate s (n = 256) --");
    let n = 256usize;
    let estimates: &[u64] = if scale.full {
        &[60, 600, 6_000, 60_000]
    } else {
        &[60, 600, 6_000]
    };
    let mut table = Table::new(vec!["s", "peak bits", "steady max bits"]);
    let mut rows = Vec::new();
    let protocol = crate::paper_protocol();
    for &s in estimates {
        let horizon = 40.0 * s as f64 + 600.0;
        let runs: Vec<RunResult> =
            pp_sim::parallel_map(scale.runs.min(8), scale.threads, move |run| {
                Experiment::new(protocol, n)
                    .seed(run_seed(scale.seed ^ s, run))
                    .horizon(horizon)
                    .snapshot_every(10.0)
                    .init(pp_sim::InitMode::FromFn(Box::new({
                        let f = Arc::new(move |_i: usize| protocol.state_with_estimate(s));
                        move |i| f(i)
                    })))
                    .run_with_memory()
            });
        let profiles: Vec<_> = runs
            .iter()
            .filter_map(|r| memory_profile(r, horizon * 0.9))
            .collect();
        let peak = pp_analysis::mean(
            &profiles
                .iter()
                .map(|p| f64::from(p.peak_bits))
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN);
        let steady = pp_analysis::mean(
            &profiles
                .iter()
                .map(|p| p.steady_max_bits)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(f64::NAN);
        table.row(vec![s.to_string(), f2(peak), f2(steady)]);
        rows.push(vec![s.to_string(), format!("{peak}"), format!("{steady}")]);
    }
    table.print();
    write_csv(
        scale.out_path("memory_s.csv"),
        &["s", "peak_bits", "steady_max_bits"],
        &rows,
    )
    .expect("write memory_s.csv");
    println!();
}
