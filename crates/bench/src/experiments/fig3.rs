//! E2 / Figure 3: relative deviation from `log2 n` across population sizes.
//!
//! Paper setup: n = 10^1, 10^2, …, 10^6; per n the min/median/max of
//! `estimate / log2 n` over converged runs.
//!
//! Expected shape (paper Fig. 3): the maximum deviation starts large
//! (≈ 4–5× at n = 10) and falls towards ≈ 1 as n grows; the median
//! approaches 1 from above; the minimum sits slightly below/at 1. Small
//! populations overshoot because the max of k·n GRVs exceeds `log2 n` by
//! `log2 k + O(1)`, which is huge relative to `log2 10`.

use crate::{f2, log2n, Scale};
use pp_analysis::{relative_deviation, write_csv, Table};
use pp_sim::AdversarySchedule;

/// Runs E2 and writes `fig3.csv`.
pub fn run(scale: &Scale) {
    let max_exp = if scale.full { 6 } else { 4 };
    let horizon = if scale.full { 5_000.0 } else { 1_000.0 };
    let warmup = horizon / 2.0;
    println!(
        "== Fig. 3: relative deviation from log n (n = 10^1..10^{max_exp}, {} runs) ==",
        scale.runs
    );

    let mut table = Table::new(vec!["n", "log2(n)", "min", "median", "max"]);
    let mut rows = Vec::new();
    for exp in 1..=max_exp {
        let n = 10usize.pow(exp);
        let runs = crate::run_many(scale, n, horizon, 5.0, AdversarySchedule::new(), None);
        let dev = relative_deviation(&runs, n, warmup).expect("estimates in window");
        table.row(vec![
            format!("10^{exp}"),
            f2(log2n(n)),
            f2(dev.min),
            f2(dev.median),
            f2(dev.max),
        ]);
        rows.push(vec![
            n.to_string(),
            format!("{}", dev.min),
            format!("{}", dev.median),
            format!("{}", dev.max),
        ]);
    }
    table.print();

    let path = scale.out_path("fig3.csv");
    write_csv(&path, &["n", "min", "median", "max"], &rows).expect("write fig3.csv");
    println!("wrote {path}\n");
}
