//! E2 / Figure 3: relative deviation from `log2 n` across population sizes.
//!
//! Paper setup: n = 10^1, 10^2, …, 10^6; per n the min/median/max of
//! `estimate / log2 n` over converged runs. All population sizes run as
//! **one** [`Sweep`](pp_sim::Sweep) grid — the flat task list keeps every
//! core busy across sizes instead of draining the pool per point.
//!
//! Expected shape (paper Fig. 3): the maximum deviation starts large
//! (≈ 4–5× at n = 10) and falls towards ≈ 1 as n grows; the median
//! approaches 1 from above; the minimum sits slightly below/at 1. Small
//! populations overshoot because the max of k·n GRVs exceeds `log2 n` by
//! `log2 k + O(1)`, which is huge relative to `log2 10`.

use crate::{f2, log2n, Scale};
use pp_analysis::{relative_deviation, Table, TableSpec};

/// Runs E2, returning the `fig3.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let (max_exp, horizon) = if scale.smoke {
        (2, 200.0)
    } else if scale.full {
        (6, 5_000.0)
    } else {
        (4, 1_000.0)
    };
    let warmup = horizon / 2.0;
    println!(
        "== Fig. 3: relative deviation from log n (n = 10^1..10^{max_exp}, {} runs) ==",
        scale.runs
    );

    let results = crate::sweep_of(scale, crate::paper_protocol())
        .populations((1..=max_exp).map(|e| 10usize.pow(e)))
        .horizon(horizon)
        .snapshot_every(5.0)
        .run_scanned();

    let mut table = Table::new(vec!["n", "log2(n)", "min", "median", "max"]);
    let mut csv = TableSpec::new("fig3.csv", &["n", "min", "median", "max"]);
    for (exp, cell) in (1..=max_exp).zip(results.cells_for_schedule("static")) {
        let n = cell.n;
        let dev = relative_deviation(&cell.runs, n, warmup).expect("estimates in window");
        table.row(vec![
            format!("10^{exp}"),
            f2(log2n(n)),
            f2(dev.min),
            f2(dev.median),
            f2(dev.max),
        ]);
        csv.push(vec![
            n.to_string(),
            format!("{}", dev.min),
            format!("{}", dev.median),
            format!("{}", dev.max),
        ]);
    }
    table.print();
    vec![csv]
}
