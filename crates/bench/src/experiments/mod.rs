//! Experiment implementations (DESIGN.md §4, E1–E14) and the declarative
//! registry the `dsc-bench` driver runs them from.
//!
//! Each module exposes `run(scale: &Scale) -> Vec<TableSpec>`: it executes
//! its whole grid on the [`Sweep`](pp_sim::Sweep) engine, prints its
//! tables/sparklines, and returns every output table as data. The registry
//! entry point [`run_and_write`] is the single place rows become CSV files
//! (via the shared `pp_analysis` writer), so all experiments emit
//! schema-consistent output and the smoke tests can assert on rows without
//! touching the filesystem.

pub mod ablation;
pub mod accuracy;
pub mod batched;
pub mod burst_overlap;
pub mod compare;
pub mod convergence;
pub mod faults;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod holding;
pub mod lemmas;
pub mod memory;
pub mod scenario;

use crate::Scale;
use pp_analysis::TableSpec;

/// A registered experiment: name, provenance, execution plan, and entry
/// point.
///
/// `backend` and `recording` are the declarative face of the unified
/// driver: every experiment runs its grid through
/// [`Sweep::run_on`](pp_sim::Sweep::run_on) on the named
/// [`Backend`](pp_sim::Backend) under the named
/// [`Recording`](pp_sim::Recording) plan, and `dsc-bench list` prints both
/// so the registry is self-describing.
pub struct ExperimentSpec {
    /// Registry name (the `dsc-bench` argument).
    pub name: &'static str,
    /// The paper figure/lemma/section the experiment reproduces.
    pub paper_ref: &'static str,
    /// The simulation backend(s) the experiment's sweeps run on.
    pub backend: &'static str,
    /// The recording plan the experiment's sweeps request.
    pub recording: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Runs the experiment at the given scale, returning its output tables.
    pub run: fn(&Scale) -> Vec<TableSpec>,
}

/// Every experiment, in `repro` execution order. All fifteen run through
/// the [`Sweep`](pp_sim::Sweep) grid engine and return their rows for the
/// shared writer; `dsc-bench all` walks this list.
pub static REGISTRY: &[ExperimentSpec] = &[
    ExperimentSpec {
        name: "fig2",
        paper_ref: "Fig. 2",
        backend: "agent-array",
        recording: "estimates",
        description: "size estimate over time in a fresh system",
        run: fig2::run,
    },
    ExperimentSpec {
        name: "fig3",
        paper_ref: "Fig. 3",
        backend: "agent-array",
        recording: "estimates",
        description: "relative deviation from log2 n across population sizes",
        run: fig3::run,
    },
    ExperimentSpec {
        name: "fig4",
        paper_ref: "Fig. 4",
        backend: "agent-array",
        recording: "estimates",
        description: "adaptation to a population crash",
        run: fig4::run,
    },
    ExperimentSpec {
        name: "fig5",
        paper_ref: "Fig. 5 (appendix)",
        backend: "agent-array",
        recording: "estimates",
        description: "recovery from a planted initial over-estimate",
        run: fig5::run,
    },
    ExperimentSpec {
        name: "convergence",
        paper_ref: "Theorem 2.1 (time)",
        backend: "agent-array",
        recording: "estimates",
        description: "convergence time vs initial estimate and population size",
        run: convergence::run,
    },
    ExperimentSpec {
        name: "holding",
        paper_ref: "Theorem 2.1 (holding)",
        backend: "agent-array",
        recording: "estimates (scanned)",
        description: "validity persists over long horizons",
        run: holding::run,
    },
    ExperimentSpec {
        name: "memory",
        paper_ref: "Theorem 2.1 (space)",
        backend: "agent-array",
        recording: "estimates + memory",
        description: "bits per agent vs n and vs an initial over-estimate",
        run: memory::run,
    },
    ExperimentSpec {
        name: "burst_overlap",
        paper_ref: "Theorem 2.2",
        backend: "agent-array",
        recording: "estimates + ticks",
        description: "burst/overlap structure of the phase clock",
        run: burst_overlap::run,
    },
    ExperimentSpec {
        name: "compare",
        paper_ref: "§1.2/§6 baselines",
        backend: "agent-array",
        recording: "estimates",
        description: "baseline counters under a population crash",
        run: compare::run,
    },
    ExperimentSpec {
        name: "ablation",
        paper_ref: "§5 design choices",
        backend: "agent-array",
        recording: "estimates",
        description: "protocol variants on the converge-then-crash scenario",
        run: ablation::run,
    },
    ExperimentSpec {
        name: "lemmas",
        paper_ref: "Lemmas 4.1-4.4",
        backend: "count + jump",
        recording: "estimates",
        description: "substrate validation at count-simulator scale",
        run: lemmas::run,
    },
    ExperimentSpec {
        name: "accuracy",
        paper_ref: "§6 open question",
        backend: "agent-array",
        recording: "estimates + memory",
        description: "averaging the dynamic estimate (accuracy vs bits)",
        run: accuracy::run,
    },
    ExperimentSpec {
        name: "batched",
        paper_ref: "Lemma 4.2 at asymptotic n",
        backend: "batched-count (+ count control)",
        recording: "estimates",
        description: "tau-leaping count dynamics up to n = 2^30",
        run: batched::run,
    },
    ExperimentSpec {
        name: "scenario",
        paper_ref: "§3 adversary (Doty-Eftekhari)",
        backend: "batched-count",
        recording: "estimates",
        description: "fault-injection trace catalog: ramps, flash crowds, crash bursts, poachers",
        run: scenario::run,
    },
    ExperimentSpec {
        name: "faults",
        paper_ref: "§2 loose stabilization (Doty-Eftekhari)",
        backend: "agent-array + count",
        recording: "estimates + recovery",
        description:
            "state corruption, Byzantine liars, adversarial starts: recovery vs the holding bound",
        run: faults::run,
    },
];

/// Looks up a registered experiment by name.
pub fn find(name: &str) -> Option<&'static ExperimentSpec> {
    REGISTRY.iter().find(|e| e.name == name)
}

/// Runs one experiment and writes its tables as CSV under the scale's
/// output directory — the only place experiment rows become files.
///
/// # Panics
///
/// Panics if the output directory or a CSV file cannot be written.
pub fn run_and_write(spec: &ExperimentSpec, scale: &Scale) -> Vec<TableSpec> {
    let tables = (spec.run)(scale);
    let paths = pp_analysis::write_tables(&scale.out_dir, &tables).unwrap_or_else(|e| {
        panic!(
            "{}: writing results under {}: {e}",
            spec.name, scale.out_dir
        )
    });
    for path in paths {
        println!("wrote {path}");
    }
    println!();
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 15, "all fifteen experiments must register");
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "registry names must be unique");
        assert!(find("fig2").is_some());
        assert!(find("no-such-experiment").is_none());
    }

    #[test]
    fn every_entry_declares_its_backend_and_recording() {
        let backends = ["agent-array", "count", "jump", "batched-count"];
        let recordings = ["estimates", "memory", "ticks", "scanned", "snapshots"];
        for e in REGISTRY {
            assert!(
                backends.iter().any(|b| e.backend.contains(b)),
                "{}: backend {:?} names no known backend",
                e.name,
                e.backend
            );
            assert!(
                recordings.iter().any(|r| e.recording.contains(r)),
                "{}: recording {:?} names no known plan",
                e.name,
                e.recording
            );
        }
        assert_eq!(find("lemmas").unwrap().backend, "count + jump");
        assert_eq!(
            find("burst_overlap").unwrap().recording,
            "estimates + ticks"
        );
    }
}
