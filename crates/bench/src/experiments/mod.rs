//! Experiment implementations (DESIGN.md §4, E1–E11).
//!
//! Each module exposes `run(scale: &Scale)`; the binaries in `src/bin` are
//! thin wrappers and `repro` chains all of them.

pub mod ablation;
pub mod accuracy;
pub mod burst_overlap;
pub mod compare;
pub mod convergence;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod holding;
pub mod lemmas;
pub mod memory;
