//! E4 / Figure 5 (appendix): recovery from an initial over-estimate of 60.
//!
//! Paper setup: every agent starts with `max = lastMax = 60`
//! (`time = τ1·60`), n = 10^1 … 10^6, 5000 parallel time.
//!
//! Expected shape (paper Fig. 5): the estimate stays pinned at 60 for a
//! time proportional to the over-estimate (the countdown must elapse before
//! the population forgets it — the `O(log n̂)` term of Theorem 2.1), then
//! drops to the usual ≈ `log2(k·n)` band. For small populations the descent
//! dominates the plot ("for small population sizes the initial estimate
//! indeed dominates the convergence time"); for large n the drop happens
//! comparatively early and the long flat band follows.

use crate::{f2, log2n, Scale};
use pp_analysis::{render_band, write_csv, PooledSeries};
use pp_sim::AdversarySchedule;
use std::sync::Arc;

/// The appendix's initial estimate.
const INITIAL_ESTIMATE: u64 = 60;

/// Runs E4 and writes `fig5_nE.csv` per population size.
pub fn run(scale: &Scale) {
    let exps: &[u32] = if scale.full {
        &[1, 2, 3, 4, 5, 6]
    } else {
        &[1, 2, 3, 4]
    };
    let horizon = 5_000.0; // the descent structure needs the paper's horizon
    println!(
        "== Fig. 5: initial estimate {INITIAL_ESTIMATE} (n = 10^1..10^{}, {} runs) ==",
        exps.last().unwrap(),
        scale.runs
    );

    let protocol = crate::paper_protocol();
    for &exp in exps {
        let n = 10usize.pow(exp);
        let init = Arc::new(move |_i: usize| protocol.state_with_estimate(INITIAL_ESTIMATE));
        let runs = crate::run_many(scale, n, horizon, 5.0, AdversarySchedule::new(), Some(init));
        let pooled = PooledSeries::pool(&runs);

        let times: Vec<f64> = pooled.points.iter().map(|p| p.parallel_time).collect();
        let mins: Vec<f64> = pooled.points.iter().map(|p| p.min).collect();
        let medians: Vec<f64> = pooled.points.iter().map(|p| p.median).collect();
        let maxes: Vec<f64> = pooled.points.iter().map(|p| p.max).collect();
        print!(
            "{}",
            render_band(
                &format!("n = 10^{exp}  [log2(n) = {}]", f2(log2n(n))),
                &times,
                &mins,
                &medians,
                &maxes
            )
        );

        // First time the median leaves the initial estimate: the forget time.
        let forgotten = pooled
            .points
            .iter()
            .find(|p| p.median < INITIAL_ESTIMATE as f64 * 0.9)
            .map(|p| p.parallel_time);
        match forgotten {
            Some(t) => println!("  initial estimate forgotten at t ≈ {}", f2(t)),
            None => println!("  initial estimate never forgotten within the horizon"),
        }

        let path = scale.out_path(&format!("fig5_n1e{exp}.csv"));
        write_csv(
            &path,
            &["parallel_time", "min", "median", "max", "runs"],
            &pooled.csv_rows(),
        )
        .expect("write fig5 csv");
        println!("  wrote {path}");
    }
    println!();
}
