//! E4 / Figure 5 (appendix): recovery from an initial over-estimate of 60.
//!
//! Paper setup: every agent starts with `max = lastMax = 60`
//! (`time = τ1·60`), n = 10^1 … 10^6, 5000 parallel time. The seeded
//! initial configuration rides the [`Sweep`](pp_sim::Sweep) init hook, so
//! every population size runs from one flat grid.
//!
//! Expected shape (paper Fig. 5): the estimate stays pinned at 60 for a
//! time proportional to the over-estimate (the countdown must elapse before
//! the population forgets it — the `O(log n̂)` term of Theorem 2.1), then
//! drops to the usual ≈ `log2(k·n)` band. For small populations the descent
//! dominates the plot ("for small population sizes the initial estimate
//! indeed dominates the convergence time"); for large n the drop happens
//! comparatively early and the long flat band follows.

use crate::{f2, log2n, Scale};
use pp_analysis::{render_band, PooledSeries, TableSpec};

/// The appendix's initial estimate.
const INITIAL_ESTIMATE: u64 = 60;

/// Runs E4, returning one `fig5_nE.csv` table per population size.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let (exps, horizon): (&[u32], f64) = if scale.smoke {
        (&[1, 2], 400.0)
    } else if scale.full {
        (&[1, 2, 3, 4, 5, 6], 5_000.0)
    } else {
        // The descent structure needs the paper's horizon even at laptop n.
        (&[1, 2, 3, 4], 5_000.0)
    };
    println!(
        "== Fig. 5: initial estimate {INITIAL_ESTIMATE} (n = 10^1..10^{}, {} runs) ==",
        exps.last().unwrap(),
        scale.runs
    );

    let protocol = crate::paper_protocol();
    let results = crate::sweep_of(scale, protocol)
        .populations(exps.iter().map(|&e| 10usize.pow(e)))
        .horizon(horizon)
        .snapshot_every(if scale.smoke { 2.0 } else { 5.0 })
        .init_with(move |_i| protocol.state_with_estimate(INITIAL_ESTIMATE))
        .run_scanned();

    let mut tables = Vec::new();
    for (&exp, cell) in exps.iter().zip(results.cells_for_schedule("static")) {
        let pooled = PooledSeries::pool(&cell.runs);

        let times: Vec<f64> = pooled.points.iter().map(|p| p.parallel_time).collect();
        let mins: Vec<f64> = pooled.points.iter().map(|p| p.min).collect();
        let medians: Vec<f64> = pooled.points.iter().map(|p| p.median).collect();
        let maxes: Vec<f64> = pooled.points.iter().map(|p| p.max).collect();
        print!(
            "{}",
            render_band(
                &format!("n = 10^{exp}  [log2(n) = {}]", f2(log2n(cell.n))),
                &times,
                &mins,
                &medians,
                &maxes
            )
        );

        // First time the median leaves the initial estimate: the forget time.
        let forgotten = pooled
            .points
            .iter()
            .find(|p| p.median < INITIAL_ESTIMATE as f64 * 0.9)
            .map(|p| p.parallel_time);
        match forgotten {
            Some(t) => println!("  initial estimate forgotten at t ≈ {}", f2(t)),
            None => println!("  initial estimate never forgotten within the horizon"),
        }

        let mut csv = TableSpec::new(
            format!("fig5_n1e{exp}.csv"),
            &["parallel_time", "min", "median", "max", "runs"],
        );
        for row in pooled.csv_rows() {
            csv.push(row);
        }
        tables.push(csv);
    }
    tables
}
