//! E9: baseline comparison under a population crash.
//!
//! All four counters run the same scenario — converge on `n` agents, then
//! the adversary removes all but a handful at `t_crash` — and the table
//! reports the median estimate before and after.
//!
//! Expected qualitative outcome (the paper's §1.2/§6 claims):
//!
//! * **DSC (the paper)** — adapts: estimate drops to the new `Θ(log n')`.
//! * **Doty–Eftekhari 2022** — adapts as well (it solves the same
//!   problem), with more memory (see E7).
//! * **static max-GRV** — stuck: the estimate is a maximum and never
//!   decreases.
//! * **BKR 2019** — whatever it output before the crash stays frozen
//!   (single leader; if the leader is among the removed, nothing can ever
//!   restart — and even with a surviving leader the protocol has already
//!   halted with a stale count).

use crate::{f2, log2n, Scale};
use pp_analysis::{write_csv, PooledSeries, Table};
use pp_model::SizeEstimator;
use pp_protocols::{BkrCounting, De22Counting, StaticGrvCounting};
use pp_sim::{AdversarySchedule, PopulationEvent};

struct Outcome {
    name: &'static str,
    before: Option<f64>,
    after: Option<f64>,
}

fn run_one<P>(
    scale: &Scale,
    name: &'static str,
    protocol: P,
    n: usize,
    crash_at: f64,
    survivors: usize,
    horizon: f64,
) -> Outcome
where
    P: SizeEstimator + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    let schedule = AdversarySchedule::new().at(crash_at, PopulationEvent::ResizeTo(survivors));
    let runs = crate::run_many_protocol(scale, protocol, n, horizon, 10.0, schedule);
    let pooled = PooledSeries::pool(&runs);
    let before = pooled
        .window(crash_at - 100.0, crash_at)
        .last()
        .map(|p| p.median);
    let after = pooled.points.last().map(|p| p.median);
    Outcome {
        name,
        before,
        after,
    }
}

/// Runs E9 and writes `compare.csv`.
pub fn run(scale: &Scale) {
    let n = if scale.full { 16_384 } else { 1_024 };
    let survivors = 32;
    let crash_at = 900.0;
    let horizon = 2_500.0;
    println!(
        "== Baseline comparison: n = {n} → {survivors} at t = {crash_at} ({} runs) ==",
        scale.runs
    );
    println!(
        "   references: log2(n) = {}, log2(survivors) = {}",
        f2(log2n(n)),
        f2(log2n(survivors))
    );

    let outcomes = vec![
        run_one(
            scale,
            "DSC (paper)",
            crate::paper_protocol(),
            n,
            crash_at,
            survivors,
            horizon,
        ),
        run_one(
            scale,
            "Doty-Eftekhari 2022",
            De22Counting::new(),
            n,
            crash_at,
            survivors,
            horizon,
        ),
        run_one(
            scale,
            "static max-GRV",
            StaticGrvCounting::new(16),
            n,
            crash_at,
            survivors,
            horizon,
        ),
        run_one(
            scale,
            "BKR 2019 (leader)",
            BkrCounting::new().with_round_factor(8),
            n,
            crash_at,
            survivors,
            horizon,
        ),
    ];

    let mut table = Table::new(vec!["protocol", "median before", "median after", "adapts?"]);
    let mut rows = Vec::new();
    for o in &outcomes {
        let fmt = |x: Option<f64>| x.map(f2).unwrap_or_else(|| "-".into());
        // "Adapts" = the estimate covered at least 40% of the gap from its
        // pre-crash level towards the new log2(survivors) level (a
        // direction-and-magnitude test robust to each protocol's own
        // constant-factor offset).
        let adapts = match (o.before, o.after) {
            (Some(b), Some(a)) => {
                let target = log2n(survivors);
                if b <= target + 2.0 {
                    "n/a".to_string()
                } else if (b - a) >= 0.4 * (b - target) {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                }
            }
            _ => "no output".to_string(),
        };
        table.row(vec![
            o.name.to_string(),
            fmt(o.before),
            fmt(o.after),
            adapts.clone(),
        ]);
        rows.push(vec![
            o.name.to_string(),
            fmt(o.before),
            fmt(o.after),
            adapts,
        ]);
    }
    table.print();
    write_csv(
        scale.out_path("compare.csv"),
        &["protocol", "median_before", "median_after", "adapts"],
        &rows,
    )
    .expect("write compare.csv");
    println!();
}
