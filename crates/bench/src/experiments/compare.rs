//! E9: baseline comparison under a population crash.
//!
//! All four counters run the same scenario — converge on `n` agents, then
//! the adversary removes all but a handful at `t_crash` — and the table
//! reports the median estimate before and after, plus a static
//! (no-adversary) control column.
//!
//! Each protocol runs one [`Sweep`](pp_sim::Sweep) grid with two labeled
//! schedules — `static` (control) and `crash` — so both scenarios fan out
//! as a single flat task list instead of separate hand-rolled run batches.
//!
//! Expected qualitative outcome (the paper's §1.2/§6 claims):
//!
//! * **DSC (the paper)** — adapts: estimate drops to the new `Θ(log n')`.
//! * **Doty–Eftekhari 2022** — adapts as well (it solves the same
//!   problem), with more memory (see E7).
//! * **static max-GRV** — stuck: the estimate is a maximum and never
//!   decreases.
//! * **BKR 2019** — whatever it output before the crash stays frozen
//!   (single leader; if the leader is among the removed, nothing can ever
//!   restart — and even with a surviving leader the protocol has already
//!   halted with a stale count).

use crate::{f2, log2n, Scale};
use pp_analysis::{PooledSeries, Table, TableSpec};
use pp_model::SizeEstimator;
use pp_protocols::{BkrCounting, De22Counting, StaticGrvCounting};
use pp_sim::{AdversarySchedule, PopulationEvent};

struct Scenario {
    n: usize,
    survivors: usize,
    crash_at: f64,
    horizon: f64,
}

struct Outcome {
    name: &'static str,
    before: Option<f64>,
    after: Option<f64>,
    control: Option<f64>,
    /// The protocol's own converged level on a static population of
    /// `survivors` agents — the level a perfect adapter would reach.
    target: Option<f64>,
}

fn run_one<P>(scale: &Scale, name: &'static str, protocol: P, sc: &Scenario) -> Outcome
where
    P: SizeEstimator + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    let crash = AdversarySchedule::new().at(sc.crash_at, PopulationEvent::ResizeTo(sc.survivors));
    // One grid per protocol: {survivors, n} × {static, crash}. The
    // (survivors, static) cell supplies the protocol's own converged level
    // at the post-crash size — the adaptation target with the protocol's
    // constant factors included. ((survivors, crash) resizes to its own
    // size, a no-op cell whose cost is negligible at that n.)
    let results = crate::sweep_of(scale, protocol)
        .populations([sc.survivors, sc.n])
        .schedule("static", AdversarySchedule::new())
        .schedule("crash", crash)
        .horizon(sc.horizon)
        .snapshot_every(10.0)
        .run_scanned();

    let crashed = PooledSeries::pool(&results.cell(sc.n, "crash").expect("crash cell").runs);
    let control = PooledSeries::pool(&results.cell(sc.n, "static").expect("static cell").runs);
    let target = PooledSeries::pool(
        &results
            .cell(sc.survivors, "static")
            .expect("target cell")
            .runs,
    );
    Outcome {
        name,
        before: crashed
            .window(sc.crash_at - 100.0, sc.crash_at)
            .last()
            .map(|p| p.median),
        after: crashed.points.last().map(|p| p.median),
        control: control.points.last().map(|p| p.median),
        target: target.points.last().map(|p| p.median),
    }
}

/// Runs E9, returning the `compare.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let sc = if scale.smoke {
        Scenario {
            n: 128,
            survivors: 16,
            crash_at: 150.0,
            // Post-crash re-convergence needs a few Θ(log n̂)-length
            // rounds; anything shorter reads the estimate mid-descent.
            horizon: 1_200.0,
        }
    } else {
        Scenario {
            n: if scale.full { 16_384 } else { 1_024 },
            survivors: 32,
            crash_at: 900.0,
            horizon: 2_500.0,
        }
    };
    println!(
        "== Baseline comparison: n = {} → {} at t = {} ({} runs) ==",
        sc.n, sc.survivors, sc.crash_at, scale.runs
    );
    println!(
        "   references: log2(n) = {}, log2(survivors) = {}",
        f2(log2n(sc.n)),
        f2(log2n(sc.survivors))
    );

    let outcomes = vec![
        run_one(scale, "DSC (paper)", crate::paper_protocol(), &sc),
        run_one(scale, "Doty-Eftekhari 2022", De22Counting::new(), &sc),
        run_one(scale, "static max-GRV", StaticGrvCounting::new(16), &sc),
        run_one(
            scale,
            "BKR 2019 (leader)",
            BkrCounting::new().with_round_factor(8),
            &sc,
        ),
    ];

    let mut table = Table::new(vec![
        "protocol",
        "median before",
        "median after",
        "static control",
        "target (n')",
        "adapts?",
    ]);
    let mut csv = TableSpec::new(
        "compare.csv",
        &[
            "protocol",
            "median_before",
            "median_after",
            "median_static_control",
            "median_target",
            "adapts",
        ],
    );
    for o in &outcomes {
        let fmt = |x: Option<f64>| x.map(f2).unwrap_or_else(|| "-".into());
        // "Adapts" = the estimate covered at least 40% of the gap from its
        // pre-crash level towards the protocol's *own* converged level on
        // a static population of `survivors` agents (the target cell), so
        // each protocol's constant-factor offset cancels out.
        let adapts = match (o.before, o.after, o.target) {
            (Some(b), Some(a), Some(t)) => {
                if b <= t + 2.0 {
                    "n/a".to_string()
                } else if (b - a) >= 0.4 * (b - t) {
                    "yes".to_string()
                } else {
                    "NO".to_string()
                }
            }
            _ => "no output".to_string(),
        };
        table.row(vec![
            o.name.to_string(),
            fmt(o.before),
            fmt(o.after),
            fmt(o.control),
            fmt(o.target),
            adapts.clone(),
        ]);
        csv.push(vec![
            o.name.to_string(),
            fmt(o.before),
            fmt(o.after),
            fmt(o.control),
            fmt(o.target),
            adapts,
        ]);
    }
    table.print();
    vec![csv]
}
