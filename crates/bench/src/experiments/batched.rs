//! E12: the paper's asymptotic regime on the batched (tau-leaping)
//! backend.
//!
//! The paper's guarantees are asymptotic — the O(log n) epidemic window of
//! Lemma 4.2 only *looks* logarithmic when n spans many orders of
//! magnitude — yet exact per-interaction stepping tops out around n ≈ 10⁶.
//! This experiment sweeps the Infection substrate on the
//! [`BatchedCountSimulator`] up to n = 2³⁰ (> 10⁹ at `--full`), checking
//! that mean completion time stays inside the Lemma 4.2 window at every
//! scale, and runs a count-backend control at a shared matched n so the
//! batching approximation is audited against exact dynamics in the same
//! table (completion-window agreement, the distribution-level contract —
//! trajectories are *not* comparable above the batching threshold; see the
//! `pp_sim::batched_sim` module docs).
//!
//! Wall-clock time for the 10⁹-agent point is recorded by the
//! `sweep_timing` bin into `BENCH_sweep.json`, not here: table rows must
//! stay bit-identical across worker thread counts.

use crate::{f2, log2n, Scale};
use pp_analysis::{Table, TableSpec};
use pp_protocols::Infection;
use pp_sim::{BatchedCountSimulator, CountSimulator, RunResult, Sweep, TrackedEstimates};

/// Parallel time at which a run's epidemic first covered the population.
fn completion_time(run: &RunResult) -> Option<f64> {
    run.snapshots
        .iter()
        .find(|s| s.estimates.is_some_and(|e| e.without_estimate == 0))
        .map(|s| s.parallel_time)
}

/// Lemma 4.2 epidemic window for k = 1, in parallel time.
fn bound_of(n: usize) -> f64 {
    4.0 * 2.0 * log2n(n)
}

/// Runs E12, returning the `batched.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    println!("== Batched count dynamics: Lemma 4.2 at asymptotic scale ==");
    let mut csv = TableSpec::new(
        "batched.csv",
        &[
            "backend",
            "n",
            "mean_completion_pt",
            "bound_pt",
            "violations",
        ],
    );
    // The largest exact-control population is shared with the batched grid
    // so the two completion distributions are directly comparable.
    let (batched_exps, control_exp, runs): (&[u32], u32, usize) = if scale.smoke {
        (&[12, 16], 12, 2)
    } else if scale.full {
        // 2^30 ≈ 1.07·10⁹ — the paper's asymptotic regime.
        (&[16, 20, 24, 30], 16, 8)
    } else {
        (&[16, 20, 24], 16, 8)
    };

    let sweep = |populations: Vec<usize>, seed_offset: u64| {
        Sweep::new(Infection::new())
            .populations(populations)
            .runs(runs)
            .master_seed(scale.seed + seed_offset)
            .threads(scale.threads)
            .horizon_with(|n| bound_of(n) + 1.0)
            .snapshot_every(1.0)
            .init_counts(|n| vec![n - 1, 1])
    };

    let mut table = Table::new(vec![
        "backend",
        "n",
        "mean completion (pt)",
        "bound (pt)",
        "violations",
    ]);
    let mut emit = |backend: &str, cell: &pp_sim::SweepCell| {
        let bound = bound_of(cell.n);
        let mut total = 0.0;
        let mut violations = 0;
        for run in &cell.runs {
            // The horizon already extends past the bound, so an
            // incomplete run counts as a violation at the horizon.
            let t = completion_time(run).unwrap_or(bound + 1.0);
            if t > bound {
                violations += 1;
            }
            total += t;
        }
        let mean = total / cell.runs.len() as f64;
        table.row(vec![
            backend.to_string(),
            cell.n.to_string(),
            f2(mean),
            f2(bound),
            violations.to_string(),
        ]);
        csv.push(vec![
            backend.into(),
            cell.n.to_string(),
            f2(mean),
            f2(bound),
            violations.to_string(),
        ]);
    };

    let batched = sweep(batched_exps.iter().map(|&e| 1usize << e).collect(), 0)
        .run_on::<BatchedCountSimulator<_>, _>(TrackedEstimates)
        .expect("a counts-initialized static grid fits the batched backend");
    for cell in &batched.cells {
        emit("batched-count", cell);
    }
    let control = sweep(vec![1usize << control_exp], 1)
        .run_on::<CountSimulator<_>, _>(TrackedEstimates)
        .expect("a counts-initialized static grid fits the count backend");
    for cell in &control.cells {
        emit("count", cell);
    }
    table.print();
    vec![csv]
}
