//! E10: ablations of the protocol's design choices.
//!
//! Each variant runs the same converge-then-crash scenario — a single-cell
//! [`Sweep`](pp_sim::Sweep) grid under the crash schedule — and measured
//! are convergence time, stability (band violations between convergence
//! and the crash), and whether the estimate adapts after the crash.
//!
//! Variants and what they probe:
//!
//! * **Algorithm 1 (simplified)** — no trailing estimate, no backup GRVs,
//!   single geometric per reset: the paper's own motivation for the
//!   additions; expect unstable phase lengths (a round that resamples only
//!   small GRVs collapses its phases, losing synchronization).
//! * **k ∈ {1, 4, 16}** — sample count per reset: smaller k gives noisier
//!   (and lower) estimates; `k = 16` is the paper's §5 choice.
//! * **τ′ = ∞ (backup disabled)** — removes lines 7–10: recovery from
//!   some adverse configurations relies on backup GRVs; the crash scenario
//!   should still work (resets dominate here), showing backup is about
//!   worst-case guarantees, not the common path.
//! * **τ triples** — scaled thresholds change round length (and hence
//!   adaptation latency) proportionally.

use crate::{f2, log2n, Scale};
use dsc_core::{DscConfig, DynamicSizeCounting, SimplifiedDynamicSizeCounting};
use pp_analysis::{convergence_time, mean, Band, PooledSeries, Table, TableSpec};
use pp_model::SizeEstimator;
use pp_sim::{AdversarySchedule, PopulationEvent};

struct Scenario {
    n: usize,
    survivors: usize,
    crash_at: f64,
    horizon: f64,
}

struct Measured {
    convergence: f64,
    violations: usize,
    post_crash: Option<f64>,
}

fn measure<P>(scale: &Scale, protocol: P, sc: &Scenario) -> Measured
where
    P: SizeEstimator + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    let schedule =
        AdversarySchedule::new().at(sc.crash_at, PopulationEvent::ResizeTo(sc.survivors));
    let results = crate::sweep_of(scale, protocol)
        .populations([sc.n])
        .schedule("crash", schedule)
        .horizon(sc.horizon)
        .snapshot_every(5.0)
        .run_scanned();
    let runs = &results.cells[0].runs;
    let band = Band::around_log_n(sc.n, 0.4, 6.0);
    let conv: Vec<f64> = runs
        .iter()
        .filter_map(|r| convergence_time(r, band))
        .collect();
    let convergence = mean(&conv).unwrap_or(f64::NAN);
    // Violations: snapshots between convergence and crash outside the band.
    let mut violations = 0usize;
    for r in runs {
        let Some(c) = convergence_time(r, band) else {
            continue;
        };
        for s in &r.snapshots {
            if s.parallel_time <= c || s.parallel_time >= sc.crash_at {
                continue;
            }
            match &s.estimates {
                Some(e) if band.contains_summary(e.min, e.max) => {}
                _ => violations += 1,
            }
        }
    }
    // Post-crash adaptation: median at the horizon.
    let pooled = PooledSeries::pool(runs);
    let post_crash = pooled.points.last().map(|p| p.median);
    Measured {
        convergence,
        violations,
        post_crash,
    }
}

/// Runs E10, returning the `ablation.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let sc = if scale.smoke {
        Scenario {
            n: 128,
            survivors: 16,
            crash_at: 200.0,
            horizon: 600.0,
        }
    } else {
        Scenario {
            n: if scale.full { 8_192 } else { 2_048 },
            survivors: 64,
            crash_at: 800.0,
            horizon: 2_500.0,
        }
    };
    println!(
        "== Ablations (n = {} → {} at t = {}, {} runs) ==",
        sc.n, sc.survivors, sc.crash_at, scale.runs
    );
    println!(
        "   references: log2(n) = {}, log2(survivors) = {}",
        f2(log2n(sc.n)),
        f2(log2n(sc.survivors))
    );

    let base = DscConfig::empirical();
    let mut table = Table::new(vec![
        "variant",
        "conv. time",
        "violations",
        "median after crash",
    ]);
    let mut csv = TableSpec::new(
        "ablation.csv",
        &[
            "variant",
            "convergence_time",
            "violations",
            "median_after_crash",
        ],
    );
    let mut add = |name: &str, m: Measured| {
        let post = m.post_crash.map(f2).unwrap_or_else(|| "-".into());
        table.row(vec![
            name.to_string(),
            f2(m.convergence),
            m.violations.to_string(),
            post.clone(),
        ]);
        csv.push(vec![
            name.to_string(),
            format!("{}", m.convergence),
            m.violations.to_string(),
            post,
        ]);
    };

    add(
        "full (6,4,2) k=16",
        measure(scale, DynamicSizeCounting::new(base), &sc),
    );
    add(
        "Algorithm 1 (simplified)",
        measure(scale, SimplifiedDynamicSizeCounting::new(base), &sc),
    );
    add(
        "k=1",
        measure(scale, DynamicSizeCounting::new(base.with_k(1)), &sc),
    );
    add(
        "k=4",
        measure(scale, DynamicSizeCounting::new(base.with_k(4)), &sc),
    );
    add(
        "backup disabled",
        measure(
            scale,
            DynamicSizeCounting::new(base.with_tau_prime(u64::MAX / 1_000_000)),
            &sc,
        ),
    );
    add(
        "taus (12,8,4)",
        measure(
            scale,
            DynamicSizeCounting::new(base.with_taus(12, 8, 4)),
            &sc,
        ),
    );
    add(
        "taus (3,2,1)",
        measure(
            scale,
            DynamicSizeCounting::new(base.with_taus(3, 2, 1)),
            &sc,
        ),
    );

    table.print();
    vec![csv]
}
