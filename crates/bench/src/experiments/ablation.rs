//! E10: ablations of the protocol's design choices.
//!
//! Each variant runs the same converge-then-crash scenario; measured are
//! convergence time, stability (band violations between convergence and
//! the crash), and whether the estimate adapts after the crash.
//!
//! Variants and what they probe:
//!
//! * **Algorithm 1 (simplified)** — no trailing estimate, no backup GRVs,
//!   single geometric per reset: the paper's own motivation for the
//!   additions; expect unstable phase lengths (a round that resamples only
//!   small GRVs collapses its phases, losing synchronization).
//! * **k ∈ {1, 4, 16}** — sample count per reset: smaller k gives noisier
//!   (and lower) estimates; `k = 16` is the paper's §5 choice.
//! * **τ′ = ∞ (backup disabled)** — removes lines 7–10: recovery from
//!   some adverse configurations relies on backup GRVs; the crash scenario
//!   should still work (resets dominate here), showing backup is about
//!   worst-case guarantees, not the common path.
//! * **τ triples** — scaled thresholds change round length (and hence
//!   adaptation latency) proportionally.

use crate::{f2, log2n, Scale};
use dsc_core::{DscConfig, DynamicSizeCounting, SimplifiedDynamicSizeCounting};
use pp_analysis::{convergence_time, mean, write_csv, Band, PooledSeries, Table};
use pp_model::SizeEstimator;
use pp_sim::{AdversarySchedule, PopulationEvent};

struct Measured {
    convergence: f64,
    violations: usize,
    post_crash: Option<f64>,
}

fn measure<P>(
    scale: &Scale,
    protocol: P,
    n: usize,
    crash_at: f64,
    survivors: usize,
    horizon: f64,
) -> Measured
where
    P: SizeEstimator + Clone + Send + Sync,
    P::State: Clone + Send + Sync + 'static,
{
    let schedule = AdversarySchedule::new().at(crash_at, PopulationEvent::ResizeTo(survivors));
    let runs = crate::run_many_protocol(scale, protocol, n, horizon, 5.0, schedule);
    let band = Band::around_log_n(n, 0.4, 6.0);
    let conv: Vec<f64> = runs
        .iter()
        .filter_map(|r| convergence_time(r, band))
        .collect();
    let convergence = mean(&conv).unwrap_or(f64::NAN);
    // Violations: snapshots between convergence and crash outside the band.
    let mut violations = 0usize;
    for r in &runs {
        let Some(c) = convergence_time(r, band) else {
            continue;
        };
        for s in &r.snapshots {
            if s.parallel_time <= c || s.parallel_time >= crash_at {
                continue;
            }
            match &s.estimates {
                Some(e) if band.contains_summary(e.min, e.max) => {}
                _ => violations += 1,
            }
        }
    }
    // Post-crash adaptation: median at the horizon.
    let pooled = PooledSeries::pool(&runs);
    let post_crash = pooled.points.last().map(|p| p.median);
    Measured {
        convergence,
        violations,
        post_crash,
    }
}

/// Runs E10 and writes `ablation.csv`.
pub fn run(scale: &Scale) {
    let n = if scale.full { 8_192 } else { 2_048 };
    let survivors = 64;
    let crash_at = 800.0;
    let horizon = 2_500.0;
    println!(
        "== Ablations (n = {n} → {survivors} at t = {crash_at}, {} runs) ==",
        scale.runs
    );
    println!(
        "   references: log2(n) = {}, log2(survivors) = {}",
        f2(log2n(n)),
        f2(log2n(survivors))
    );

    let base = DscConfig::empirical();
    type Variant<'a> = (&'a str, Box<dyn Fn() -> Measured>);
    let variants: Vec<Variant> = vec![
        (
            "full (6,4,2) k=16",
            Box::new({
                let scale = scale.clone();
                move || {
                    measure(
                        &scale,
                        DynamicSizeCounting::new(base),
                        n,
                        crash_at,
                        survivors,
                        horizon,
                    )
                }
            }),
        ),
        (
            "Algorithm 1 (simplified)",
            Box::new({
                let scale = scale.clone();
                move || {
                    measure(
                        &scale,
                        SimplifiedDynamicSizeCounting::new(base),
                        n,
                        crash_at,
                        survivors,
                        horizon,
                    )
                }
            }),
        ),
        (
            "k=1",
            Box::new({
                let scale = scale.clone();
                move || {
                    measure(
                        &scale,
                        DynamicSizeCounting::new(base.with_k(1)),
                        n,
                        crash_at,
                        survivors,
                        horizon,
                    )
                }
            }),
        ),
        (
            "k=4",
            Box::new({
                let scale = scale.clone();
                move || {
                    measure(
                        &scale,
                        DynamicSizeCounting::new(base.with_k(4)),
                        n,
                        crash_at,
                        survivors,
                        horizon,
                    )
                }
            }),
        ),
        (
            "backup disabled",
            Box::new({
                let scale = scale.clone();
                move || {
                    measure(
                        &scale,
                        DynamicSizeCounting::new(base.with_tau_prime(u64::MAX / 1_000_000)),
                        n,
                        crash_at,
                        survivors,
                        horizon,
                    )
                }
            }),
        ),
        (
            "taus (12,8,4)",
            Box::new({
                let scale = scale.clone();
                move || {
                    measure(
                        &scale,
                        DynamicSizeCounting::new(base.with_taus(12, 8, 4)),
                        n,
                        crash_at,
                        survivors,
                        horizon,
                    )
                }
            }),
        ),
        (
            "taus (3,2,1)",
            Box::new({
                let scale = scale.clone();
                move || {
                    measure(
                        &scale,
                        DynamicSizeCounting::new(base.with_taus(3, 2, 1)),
                        n,
                        crash_at,
                        survivors,
                        horizon,
                    )
                }
            }),
        ),
    ];

    let mut table = Table::new(vec![
        "variant",
        "conv. time",
        "violations",
        "median after crash",
    ]);
    let mut rows = Vec::new();
    for (name, f) in variants {
        let m = f();
        let post = m.post_crash.map(f2).unwrap_or_else(|| "-".into());
        table.row(vec![
            name.to_string(),
            f2(m.convergence),
            m.violations.to_string(),
            post.clone(),
        ]);
        rows.push(vec![
            name.to_string(),
            format!("{}", m.convergence),
            m.violations.to_string(),
            post,
        ]);
    }
    table.print();
    write_csv(
        scale.out_path("ablation.csv"),
        &[
            "variant",
            "convergence_time",
            "violations",
            "median_after_crash",
        ],
        &rows,
    )
    .expect("write ablation.csv");
    println!();
}
