//! E1 / Figure 2: size estimate over time in a fresh system.
//!
//! Paper setup: n = 10^6 agents, initially "empty" (every agent in the
//! fresh joined state), 5000 parallel time, 96 runs; plotted are the
//! minimum, median, and maximum of all estimates per snapshot, against the
//! reference line `log2 n`.
//!
//! Expected shape (paper Fig. 2): a fast ramp from 1 to ≈ `log2(k·n)`
//! within tens of parallel time, then a long, flat band with small
//! oscillation — the holding phase. With k = 16 the estimates settle a
//! few units *above* `log2 n` (the maximum of k·n GRVs concentrates around
//! `log2(k·n) ≈ log2 n + 4`), matching the paper's plot where the band
//! sits slightly above the reference line.

use crate::{f2, log2n, Scale};
use pp_analysis::{render_band, PooledSeries, Table, TableSpec};

/// Runs E1, returning the `fig2.csv` table.
pub fn run(scale: &Scale) -> Vec<TableSpec> {
    let (n, horizon) = if scale.smoke {
        (128, 120.0)
    } else if scale.full {
        (1_000_000, 5_000.0)
    } else {
        (20_000, 1_500.0)
    };
    let snapshot_every = if scale.full { 5.0 } else { 1.0 };
    println!(
        "== Fig. 2: estimate of log n over time (n = {n}, {} runs) ==",
        scale.runs
    );

    let results = crate::sweep_of(scale, crate::paper_protocol())
        .populations([n])
        .horizon(horizon)
        .snapshot_every(snapshot_every)
        .run_scanned();
    let pooled = PooledSeries::pool(&results.cells[0].runs);

    let times: Vec<f64> = pooled.points.iter().map(|p| p.parallel_time).collect();
    let mins: Vec<f64> = pooled.points.iter().map(|p| p.min).collect();
    let medians: Vec<f64> = pooled.points.iter().map(|p| p.median).collect();
    let maxes: Vec<f64> = pooled.points.iter().map(|p| p.max).collect();
    print!(
        "{}",
        render_band(
            &format!("estimate of log n   [reference log2(n) = {}]", f2(log2n(n))),
            &times,
            &mins,
            &medians,
            &maxes
        )
    );

    let mut table = Table::new(vec!["t", "min", "median", "max"]);
    let count = pooled.points.len();
    for i in (0..=10).map(|k| (count - 1) * k / 10) {
        let p = &pooled.points[i];
        table.row(vec![
            format!("{:.0}", p.parallel_time),
            f2(p.min),
            f2(p.median),
            f2(p.max),
        ]);
    }
    table.print();

    let mut csv = TableSpec::new(
        "fig2.csv",
        &["parallel_time", "min", "median", "max", "runs"],
    );
    for row in pooled.csv_rows() {
        csv.push(row);
    }
    vec![csv]
}
