//! E1 / Figure 2: size estimate over time in a fresh system.
//!
//! Paper setup: n = 10^6 agents, initially "empty" (every agent in the
//! fresh joined state), 5000 parallel time, 96 runs; plotted are the
//! minimum, median, and maximum of all estimates per snapshot, against the
//! reference line `log2 n`.
//!
//! Expected shape (paper Fig. 2): a fast ramp from 1 to ≈ `log2(k·n)`
//! within tens of parallel time, then a long, flat band with small
//! oscillation — the holding phase. With k = 16 the estimates settle a
//! few units *above* `log2 n` (the maximum of k·n GRVs concentrates around
//! `log2(k·n) ≈ log2 n + 4`), matching the paper's plot where the band
//! sits slightly above the reference line.

use crate::{f2, log2n, Scale};
use pp_analysis::{render_band, write_csv, PooledSeries, Table};
use pp_sim::AdversarySchedule;

/// Runs E1 and writes `fig2.csv`.
pub fn run(scale: &Scale) {
    let (n, horizon) = if scale.full {
        (1_000_000, 5_000.0)
    } else {
        (20_000, 1_500.0)
    };
    let snapshot_every = if scale.full { 5.0 } else { 1.0 };
    println!(
        "== Fig. 2: estimate of log n over time (n = {n}, {} runs) ==",
        scale.runs
    );

    let runs = crate::run_many(
        scale,
        n,
        horizon,
        snapshot_every,
        AdversarySchedule::new(),
        None,
    );
    let pooled = PooledSeries::pool(&runs);

    let times: Vec<f64> = pooled.points.iter().map(|p| p.parallel_time).collect();
    let mins: Vec<f64> = pooled.points.iter().map(|p| p.min).collect();
    let medians: Vec<f64> = pooled.points.iter().map(|p| p.median).collect();
    let maxes: Vec<f64> = pooled.points.iter().map(|p| p.max).collect();
    print!(
        "{}",
        render_band(
            &format!("estimate of log n   [reference log2(n) = {}]", f2(log2n(n))),
            &times,
            &mins,
            &medians,
            &maxes
        )
    );

    let mut table = Table::new(vec!["t", "min", "median", "max"]);
    let count = pooled.points.len();
    for i in (0..=10).map(|k| (count - 1) * k / 10) {
        let p = &pooled.points[i];
        table.row(vec![
            format!("{:.0}", p.parallel_time),
            f2(p.min),
            f2(p.median),
            f2(p.max),
        ]);
    }
    table.print();

    let path = scale.out_path("fig2.csv");
    write_csv(
        &path,
        &["parallel_time", "min", "median", "max", "runs"],
        &pooled.csv_rows(),
    )
    .expect("write fig2.csv");
    println!("wrote {path}\n");
}
