//! Criterion bench: simulator throughput (E12).
//!
//! Measures interactions per second for the paper's protocol at several
//! population sizes, with and without the incremental estimate tracker —
//! the quantity that determines how long a full-scale (n = 10^6,
//! 5000 parallel time) figure reproduction takes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_sim::Simulator;

const BATCH: u64 = 10_000;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("dsc_interactions");
    g.throughput(Throughput::Elements(BATCH));
    for n in [1_000usize, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("plain", n), &n, |b, &n| {
            let mut sim = Simulator::with_seed(pp_bench::paper_protocol(), n, 1);
            sim.run_parallel_time(50.0); // warm into steady state
            b.iter(|| sim.step_n(BATCH));
        });
        g.bench_with_input(BenchmarkId::new("tracked", n), &n, |b, &n| {
            let mut sim = Simulator::tracked(pp_bench::paper_protocol(), n, 1);
            sim.run_parallel_time(50.0);
            b.iter(|| sim.step_n(BATCH));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("count_sim_interactions");
    g.throughput(Throughput::Elements(BATCH));
    for n in [100_000u64, 10_000_000] {
        g.bench_with_input(BenchmarkId::new("infection", n), &n, |b, &n| {
            let mut sim = pp_sim::CountSimulator::from_counts(
                pp_protocols::Infection::new(),
                vec![n / 2, n / 2],
                1,
            );
            b.iter(|| sim.step_n(BATCH));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
