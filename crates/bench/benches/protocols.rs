//! Criterion bench: per-interaction cost of every protocol in the workspace.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dsc_core::{DscConfig, SimplifiedDynamicSizeCounting, SyntheticDsc};
use pp_protocols::{Chvp, De22Counting, Detection, MaxEpidemic, ModMClock, StaticGrvCounting};
use pp_sim::Simulator;

const BATCH: u64 = 10_000;
const N: usize = 1_000;

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_step");
    g.throughput(Throughput::Elements(BATCH));

    macro_rules! bench_proto {
        ($name:literal, $proto:expr) => {
            g.bench_function($name, |b| {
                let mut sim = Simulator::with_seed($proto, N, 1);
                sim.run_parallel_time(20.0);
                b.iter(|| sim.step_n(BATCH));
            });
        };
    }

    bench_proto!("dsc_full", pp_bench::paper_protocol());
    bench_proto!(
        "dsc_simplified",
        SimplifiedDynamicSizeCounting::new(DscConfig::empirical())
    );
    bench_proto!("dsc_synthetic", SyntheticDsc::new(DscConfig::empirical()));
    bench_proto!("max_epidemic", MaxEpidemic::new());
    bench_proto!("chvp", Chvp::new());
    bench_proto!("detection", Detection::new(1_000));
    bench_proto!("static_grv", StaticGrvCounting::new(16));
    bench_proto!("de22", De22Counting::new());
    bench_proto!("modm_clock", ModMClock::for_population(N, 8));
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
