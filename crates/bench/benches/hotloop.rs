//! Criterion bench: the sequential hot loop's primitives.
//!
//! `step` times one full interaction (single-draw pair selection +
//! monomorphized DSC transition) on a warmed steady-state population;
//! `pair_draw` and `geometric` time the two randomness primitives that
//! feed it. Together with `simulator.rs` (batched throughput) these pin
//! the per-step cost the `hotloop_timing` binary reports end to end.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pp_model::grv;
use pp_sim::Simulator;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_hotloop(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotloop");
    g.throughput(Throughput::Elements(1));
    g.bench_function("step", |b| {
        let mut sim = Simulator::with_seed(pp_bench::paper_protocol(), 1_000, 1);
        sim.run_parallel_time(50.0); // warm into steady state
        b.iter(|| sim.step());
    });
    g.bench_function("step_tracked", |b| {
        let mut sim = Simulator::tracked(pp_bench::paper_protocol(), 1_000, 1);
        sim.run_parallel_time(50.0);
        b.iter(|| sim.step());
    });
    g.bench_function("pair_draw", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(pp_model::random_ordered_pair(1_000, &mut rng)));
    });
    g.bench_function("geometric", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(grv::geometric(&mut rng)));
    });
    g.finish();
}

criterion_group!(benches, bench_hotloop);
criterion_main!(benches);
