//! Criterion bench: geometric sampling (the protocol's randomness primitive).

use criterion::{criterion_group, criterion_main, Criterion};
use pp_model::grv;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_grv(c: &mut Criterion) {
    let mut g = c.benchmark_group("grv");
    g.bench_function("geometric", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| black_box(grv::geometric(&mut rng)));
    });
    g.bench_function("grv_max_k16", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(grv::grv_max(16, &mut rng)));
    });
    g.bench_function("grv_max_k2", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(grv::grv_max(2, &mut rng)));
    });
    g.finish();
}

criterion_group!(benches, bench_grv);
criterion_main!(benches);
