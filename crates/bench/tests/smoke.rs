//! Smoke coverage for the Sweep-ported bench entry points: `--smoke` runs
//! must complete in seconds and emit non-empty CSV output.

use pp_bench::experiments::{accuracy, compare, convergence, holding, lemmas};
use pp_bench::Scale;

/// A per-test output directory under the system temp dir.
fn smoke_scale(test: &str) -> Scale {
    let dir = std::env::temp_dir().join(format!("pp_bench_smoke_{}_{test}", std::process::id()));
    Scale::smoke(dir.to_str().expect("utf-8 temp path"))
}

/// Asserts a CSV exists and has a header plus at least one data row.
fn assert_csv_nonempty(scale: &Scale, file: &str) {
    let path = scale.out_path(file);
    let contents = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("smoke run should have written {path}: {e}"));
    let lines: Vec<&str> = contents.lines().collect();
    assert!(
        lines.len() >= 2,
        "{path} should have a header and at least one data row, got {} lines",
        lines.len()
    );
    assert!(
        lines[0].contains(','),
        "{path} header should be comma-separated: {:?}",
        lines[0]
    );
}

#[test]
fn convergence_smoke_completes_and_emits_csv() {
    let scale = smoke_scale("convergence");
    convergence::run(&scale);
    assert_csv_nonempty(&scale, "convergence_nhat.csv");
    assert_csv_nonempty(&scale, "convergence_n.csv");
    let _ = std::fs::remove_dir_all(&scale.out_dir);
}

#[test]
fn accuracy_smoke_completes_and_emits_csv() {
    let scale = smoke_scale("accuracy");
    accuracy::run(&scale);
    assert_csv_nonempty(&scale, "accuracy.csv");
    let _ = std::fs::remove_dir_all(&scale.out_dir);
}

#[test]
fn holding_smoke_completes_and_emits_csv() {
    let scale = smoke_scale("holding");
    holding::run(&scale);
    assert_csv_nonempty(&scale, "holding.csv");
    let _ = std::fs::remove_dir_all(&scale.out_dir);
}

#[test]
fn compare_smoke_completes_and_emits_csv() {
    let scale = smoke_scale("compare");
    compare::run(&scale);
    assert_csv_nonempty(&scale, "compare.csv");
    let _ = std::fs::remove_dir_all(&scale.out_dir);
}

#[test]
fn lemmas_smoke_completes_and_emits_csv() {
    let scale = smoke_scale("lemmas");
    lemmas::run(&scale);
    let path = scale.out_path("lemmas.csv");
    let contents = std::fs::read_to_string(&path).expect("lemmas.csv written");
    assert_csv_nonempty(&scale, "lemmas.csv");
    // All three Sweep-driven lemma families must contribute rows.
    for family in ["lemma4.1", "lemma4.2", "lemma4.3/4.4"] {
        assert!(
            contents.contains(family),
            "lemmas.csv should contain {family} rows"
        );
    }
    let _ = std::fs::remove_dir_all(&scale.out_dir);
}
