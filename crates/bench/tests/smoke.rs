//! Registry-driven smoke coverage: every registered experiment must
//! complete in seconds at `--smoke` scale, emit at least one data row, and
//! produce bit-identical rows whatever the worker thread count — the
//! `Sweep` engine's determinism contract, asserted end to end through the
//! experiment layer and, since the backend unification, through the one
//! generic `Sweep::run_on` driver every experiment now executes on. (The
//! unification itself was validated by diffing every experiment's smoke-
//! and default-scale CSVs against the pre-refactor engine: bit-identical.)

use pp_bench::experiments::{self, REGISTRY};
use pp_bench::Scale;

/// A per-test output directory under the system temp dir.
fn smoke_scale(test: &str) -> Scale {
    let dir = std::env::temp_dir().join(format!("pp_bench_smoke_{}_{test}", std::process::id()));
    Scale::smoke(dir.to_str().expect("utf-8 temp path"))
}

/// Every registered experiment emits rows under `--smoke`, declares its
/// backend and recording plan, and the rows are row-for-row identical
/// between 1 and 4 worker threads.
#[test]
fn every_registered_experiment_emits_deterministic_rows() {
    for spec in REGISTRY {
        assert!(
            !spec.backend.is_empty() && !spec.recording.is_empty(),
            "{}: the registry must be self-describing (backend + recording)",
            spec.name
        );
        let mut serial = smoke_scale(spec.name);
        serial.threads = 1;
        let tables_serial = (spec.run)(&serial);

        let total_rows: usize = tables_serial.iter().map(|t| t.rows.len()).sum();
        assert!(
            total_rows >= 1,
            "{}: smoke run must emit at least one data row",
            spec.name
        );
        for table in &tables_serial {
            assert!(
                !table.headers.is_empty(),
                "{}: {} must have headers",
                spec.name,
                table.file
            );
        }

        let mut parallel = smoke_scale(spec.name);
        parallel.threads = 4;
        let tables_parallel = (spec.run)(&parallel);
        assert_eq!(
            tables_serial, tables_parallel,
            "{}: rows must be bit-identical across thread counts",
            spec.name
        );
    }
}

/// The full emission pipeline: running through the registry entry point
/// writes every returned table as a readable, non-empty CSV file.
#[test]
fn run_and_write_emits_csv_for_every_table() {
    let scale = smoke_scale("write_pipeline");
    let spec = experiments::find("holding").expect("holding is registered");
    let tables = experiments::run_and_write(spec, &scale);
    assert!(!tables.is_empty());
    for table in &tables {
        let path = scale.out_path(&table.file);
        let contents = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path} should have been written: {e}"));
        let lines: Vec<&str> = contents.lines().collect();
        assert!(
            lines.len() >= 2,
            "{path} should have a header and at least one data row"
        );
        assert_eq!(
            lines[0],
            table.headers.join(","),
            "{path} header must match the table spec"
        );
        assert_eq!(lines.len(), table.rows.len() + 1);
    }
    let _ = std::fs::remove_dir_all(&scale.out_dir);
}

/// `--trace NAME` (or a bare trace name on the `dsc-bench` command line)
/// restricts the scenario experiment to one catalog entry; without it the
/// whole built-in catalog emits a row per trace.
#[test]
fn scenario_trace_flag_restricts_the_catalog() {
    let spec = experiments::find("scenario").expect("scenario is registered");

    let mut one = smoke_scale("scenario_one_trace");
    one.trace = Some("flash_crowd".into());
    let tables = (spec.run)(&one);
    let rows: Vec<&Vec<String>> = tables.iter().flat_map(|t| t.rows.iter()).collect();
    assert!(!rows.is_empty());
    assert!(
        rows.iter().all(|r| r[0] == "flash_crowd"),
        "--trace must restrict the run to the named trace"
    );

    let all = smoke_scale("scenario_catalog");
    let tables = (spec.run)(&all);
    let rows: Vec<&Vec<String>> = tables.iter().flat_map(|t| t.rows.iter()).collect();
    for name in pp_sim::BUILTIN_TRACES {
        assert!(
            rows.iter().any(|r| r[0] == name),
            "catalog run must emit a {name} row"
        );
    }
}

/// The lemma families all contribute rows — a regression guard for the
/// three execution paths the experiment mixes (direct GRV sampling, the
/// jump backend, and the count backend through `Sweep::run_on`).
#[test]
fn lemma_families_all_contribute_rows() {
    let scale = smoke_scale("lemma_families");
    let spec = experiments::find("lemmas").expect("lemmas is registered");
    let tables = (spec.run)(&scale);
    let rows: Vec<&Vec<String>> = tables.iter().flat_map(|t| t.rows.iter()).collect();
    for family in ["lemma4.1", "lemma4.2", "lemma4.3/4.4"] {
        assert!(
            rows.iter().any(|r| r[0] == family),
            "lemmas must emit {family} rows"
        );
    }
}
