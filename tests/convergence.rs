//! End-to-end convergence (Theorem 2.1): from fresh and from arbitrary
//! initial configurations, the population reaches a valid estimate band
//! and agrees.

use dynamic_size_counting::analysis::{convergence_time, Band};
use dynamic_size_counting::dsc::{DscConfig, DscState, DynamicSizeCounting};
use dynamic_size_counting::sim::{Experiment, InitMode, Simulator};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn protocol() -> DynamicSizeCounting {
    DynamicSizeCounting::new(DscConfig::empirical())
}

#[test]
fn fresh_population_converges_to_log_n_band() {
    let n = 2_048;
    let result = Experiment::new(protocol(), n)
        .seed(1)
        .horizon(400.0)
        .snapshot_every(2.0)
        .run();
    let band = Band::around_log_n(n, 0.5, 4.0);
    let t = convergence_time(&result, band).expect("must converge within 400 time");
    // Lemma 4.1 upper tail: the max of the n·k GRVs in flight exceeds
    // log2(n·k) + b with probability ≤ 2⁻ᵇ (union bound over n·k
    // geometric samples). With b = 6, the first full round's countdown is
    // armed at most at τ1·(log2(n·k) + 6), and the Lemma 4.2 epidemic
    // window (8·log2 n) then agrees the population — a derived bound in
    // place of the old flaky "≤ 100" guess.
    let cfg = *protocol().config();
    let log2nk = ((n as u32 * cfg.k) as f64).log2();
    let log2n = (n as f64).log2();
    let fresh_bound = cfg.tau1 as f64 * (log2nk + 6.0) + 8.0 * log2n;
    assert!(
        t <= fresh_bound,
        "fresh convergence took {t}, above the Lemma 4.1/4.2 bound {fresh_bound}"
    );
    // After convergence all agents essentially agree. Lemma 4.1 both
    // ways: a round maximum exceeds log2(n·k) + 6 w.p. ≤ 2⁻⁶, and falls
    // below log2(n·k) − 3 w.p. ≤ exp(−2³) (all n·k samples small), so
    // any two agents — even one round apart — sit within a 9-wide window.
    let last = result.snapshots.last().unwrap().estimates.unwrap();
    assert!(
        last.max - last.min <= 9.0,
        "estimates spread beyond the two-sided GRV tail window: [{}, {}]",
        last.min,
        last.max
    );
}

#[test]
fn converges_from_arbitrary_configurations() {
    // Loose stabilization: ANY initial configuration recovers. Build a
    // deliberately adversarial mix: inconsistent maxima, trailing values,
    // timers (including negative), and interaction counters.
    let n = 1_024;
    let band = Band::around_log_n(n, 0.5, 6.0);
    for seed in 0..3u64 {
        // Convergence costs O(s + log n) where s is the largest value in
        // ANY variable (Theorem 2.1's `s` — a huge initial `time` must
        // first count down, a huge initial `max` must first be forgotten).
        // Cap the adversarial values to keep the (debug-mode) test fast:
        // max ≤ 64, time ≤ 400 ≈ τ1·64.
        let mut rng = SmallRng::seed_from_u64(seed);
        let states: Vec<DscState> = (0..n)
            .map(|_| DscState {
                max: rng.random_range(1..64),
                last_max: rng.random_range(0..64),
                time: rng.random_range(-50..400),
                interactions: rng.random_range(0..10_000),
                ticks: 0,
            })
            .collect();
        let result = Experiment::new(protocol(), n)
            .seed(1_000 + seed)
            .horizon(4_000.0)
            .snapshot_every(10.0)
            .init(InitMode::FromFn(Box::new(move |i| states[i])))
            .run();
        let t = convergence_time(&result, band)
            .unwrap_or_else(|| panic!("seed {seed}: never converged from arbitrary init"));
        // Theorem 2.3's countdown-dominated window, with the empirically
        // calibrated round count the faults experiment (E14) charges: a
        // planted max ≤ 64 re-arms its τ1·64 countdown at every
        // synchronized wrap burst until max and last_max both flush
        // (measured ≈ 5.3 rounds, charged 8), then the Lemma 4.2
        // epidemic window (8·log2 n) re-converges the estimate.
        let cfg = *protocol().config();
        let recovery_bound = 8.0 * cfg.tau1 as f64 * 64.0 + 8.0 * (n as f64).log2();
        assert!(
            t <= recovery_bound,
            "seed {seed}: convergence from arbitrary config took {t}, above {recovery_bound}"
        );
    }
}

#[test]
fn overestimate_is_forgotten_in_time_linear_in_estimate() {
    // The O(log n̂) term: doubling the initial estimate roughly doubles the
    // forget time (the countdown is τ1·n̂-long).
    let n = 512;
    let p = protocol();
    let mut forget_times = Vec::new();
    for e0 in [40u64, 80] {
        let result = Experiment::new(p, n)
            .seed(7)
            .horizon(6_000.0)
            .snapshot_every(10.0)
            .init(InitMode::FromFn(Box::new(move |_| {
                p.state_with_estimate(e0)
            })))
            .run();
        let forget = result
            .snapshots
            .iter()
            .find(|s| {
                s.estimates
                    .map(|e| e.median < e0 as f64 * 0.9)
                    .unwrap_or(false)
            })
            .map(|s| s.parallel_time)
            .expect("over-estimate must eventually be forgotten");
        forget_times.push(forget);
    }
    let ratio = forget_times[1] / forget_times[0];
    // Forgetting e0 takes an integer number of τ1·e0-long countdown
    // rounds plus a Lemma 4.2 epidemic tail: forget(e0) = r·τ1·e0 +
    // O(log n) with r a small burst count. Doubling e0 doubles the round
    // length, so the ratio is 2·(r80/r40) up to the additive log n term;
    // with r ∈ {4..8} one round of quantization keeps the ratio inside
    // [2·4/5, 2·8/5] ≈ [1.6, 3.2], widened by the ±8·log2 n tail to:
    assert!(
        (1.25..3.5).contains(&ratio),
        "forget time should scale roughly linearly with the estimate, ratio {ratio} from {forget_times:?}"
    );
}

#[test]
fn theory_constants_still_function() {
    // Lemma 4.5's huge constants (k = 2: τ1 = 2280, overestimation 60) make
    // rounds far too long to observe convergence in a test, but the
    // protocol must still run: agents reset, estimates stay in sane ranges,
    // nothing panics or overflows.
    let p = DynamicSizeCounting::new(DscConfig::theory(2));
    let n = 256;
    let mut sim = Simulator::with_seed(p, n, 3);
    sim.run_parallel_time(8_000.0);
    let ticked = sim.states().iter().filter(|s| s.ticks > 0).count();
    assert!(
        ticked == n,
        "every agent should have wrapped at least once ({ticked}/{n} did)"
    );
    let (lo, hi) = p.config().valid_band(n);
    for s in sim.states() {
        let est = p.reported_estimate(s) as f64;
        assert!(
            est >= 1.0 && est <= hi,
            "estimate {est} outside [1, {hi}] (band lo would be {lo})"
        );
    }
}

#[test]
fn simplified_algorithm_also_tracks_log_n_roughly() {
    use dynamic_size_counting::dsc::SimplifiedDynamicSizeCounting;
    let n = 2_048; // log2 = 11
    let p = SimplifiedDynamicSizeCounting::new(DscConfig::empirical());
    let result = Experiment::new(p, n)
        .seed(5)
        .horizon(500.0)
        .snapshot_every(5.0)
        .run();
    // Algorithm 1 is noisier (no trailing estimate): check only that the
    // median lands inside the Lemma 4.1 GRV window at some point —
    // [0.5·log2 n, log2(n·k) + 6], the two tails derived in
    // `fresh_population_converges_to_log_n_band` above (the old upper
    // margin 33 was a guess; log2(n·k) + 6 = 21 here is the 2⁻⁶ tail).
    let lo = 0.5 * (n as f64).log2();
    let hi = ((n as u32 * DscConfig::empirical().k) as f64).log2() + 6.0;
    let hit = result.snapshots.iter().any(|s| {
        s.estimates
            .map(|e| e.median >= lo && e.median <= hi)
            .unwrap_or(false)
    });
    assert!(hit, "simplified algorithm never produced a Θ(log n) median");
}
