//! End-to-end convergence (Theorem 2.1): from fresh and from arbitrary
//! initial configurations, the population reaches a valid estimate band
//! and agrees.

use dynamic_size_counting::analysis::{convergence_time, Band};
use dynamic_size_counting::dsc::{DscConfig, DscState, DynamicSizeCounting};
use dynamic_size_counting::sim::{Experiment, InitMode, Simulator};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn protocol() -> DynamicSizeCounting {
    DynamicSizeCounting::new(DscConfig::empirical())
}

#[test]
fn fresh_population_converges_to_log_n_band() {
    let n = 2_048;
    let result = Experiment::new(protocol(), n)
        .seed(1)
        .horizon(400.0)
        .snapshot_every(2.0)
        .run();
    let band = Band::around_log_n(n, 0.5, 4.0);
    let t = convergence_time(&result, band).expect("must converge within 400 time");
    assert!(
        t <= 100.0,
        "fresh convergence should take O(log n) ≈ tens of parallel time, took {t}"
    );
    // After convergence all agents essentially agree.
    let last = result.snapshots.last().unwrap().estimates.unwrap();
    assert!(
        last.max - last.min <= 6.0,
        "estimates spread too wide: [{}, {}]",
        last.min,
        last.max
    );
}

#[test]
fn converges_from_arbitrary_configurations() {
    // Loose stabilization: ANY initial configuration recovers. Build a
    // deliberately adversarial mix: inconsistent maxima, trailing values,
    // timers (including negative), and interaction counters.
    let n = 1_024;
    let band = Band::around_log_n(n, 0.5, 6.0);
    for seed in 0..3u64 {
        // Convergence costs O(s + log n) where s is the largest value in
        // ANY variable (Theorem 2.1's `s` — a huge initial `time` must
        // first count down, a huge initial `max` must first be forgotten).
        // Cap the adversarial values to keep the (debug-mode) test fast:
        // max ≤ 64, time ≤ 400 ≈ τ1·64.
        let mut rng = SmallRng::seed_from_u64(seed);
        let states: Vec<DscState> = (0..n)
            .map(|_| DscState {
                max: rng.random_range(1..64),
                last_max: rng.random_range(0..64),
                time: rng.random_range(-50..400),
                interactions: rng.random_range(0..10_000),
                ticks: 0,
            })
            .collect();
        let result = Experiment::new(protocol(), n)
            .seed(1_000 + seed)
            .horizon(4_000.0)
            .snapshot_every(10.0)
            .init(InitMode::FromFn(Box::new(move |i| states[i])))
            .run();
        let t = convergence_time(&result, band)
            .unwrap_or_else(|| panic!("seed {seed}: never converged from arbitrary init"));
        assert!(
            t <= 3_500.0,
            "seed {seed}: convergence from arbitrary config took {t}"
        );
    }
}

#[test]
fn overestimate_is_forgotten_in_time_linear_in_estimate() {
    // The O(log n̂) term: doubling the initial estimate roughly doubles the
    // forget time (the countdown is τ1·n̂-long).
    let n = 512;
    let p = protocol();
    let mut forget_times = Vec::new();
    for e0 in [40u64, 80] {
        let result = Experiment::new(p, n)
            .seed(7)
            .horizon(6_000.0)
            .snapshot_every(10.0)
            .init(InitMode::FromFn(Box::new(move |_| {
                p.state_with_estimate(e0)
            })))
            .run();
        let forget = result
            .snapshots
            .iter()
            .find(|s| {
                s.estimates
                    .map(|e| e.median < e0 as f64 * 0.9)
                    .unwrap_or(false)
            })
            .map(|s| s.parallel_time)
            .expect("over-estimate must eventually be forgotten");
        forget_times.push(forget);
    }
    let ratio = forget_times[1] / forget_times[0];
    assert!(
        (1.3..3.2).contains(&ratio),
        "forget time should scale roughly linearly with the estimate, ratio {ratio} from {forget_times:?}"
    );
}

#[test]
fn theory_constants_still_function() {
    // Lemma 4.5's huge constants (k = 2: τ1 = 2280, overestimation 60) make
    // rounds far too long to observe convergence in a test, but the
    // protocol must still run: agents reset, estimates stay in sane ranges,
    // nothing panics or overflows.
    let p = DynamicSizeCounting::new(DscConfig::theory(2));
    let n = 256;
    let mut sim = Simulator::with_seed(p, n, 3);
    sim.run_parallel_time(8_000.0);
    let ticked = sim.states().iter().filter(|s| s.ticks > 0).count();
    assert!(
        ticked == n,
        "every agent should have wrapped at least once ({ticked}/{n} did)"
    );
    let (lo, hi) = p.config().valid_band(n);
    for s in sim.states() {
        let est = p.reported_estimate(s) as f64;
        assert!(
            est >= 1.0 && est <= hi,
            "estimate {est} outside [1, {hi}] (band lo would be {lo})"
        );
    }
}

#[test]
fn simplified_algorithm_also_tracks_log_n_roughly() {
    use dynamic_size_counting::dsc::SimplifiedDynamicSizeCounting;
    let n = 2_048; // log2 = 11
    let p = SimplifiedDynamicSizeCounting::new(DscConfig::empirical());
    let result = Experiment::new(p, n)
        .seed(5)
        .horizon(500.0)
        .snapshot_every(5.0)
        .run();
    // Algorithm 1 is noisier (no trailing estimate): check only that the
    // median lands in a generous Θ(log n) band at some point.
    let hit = result.snapshots.iter().any(|s| {
        s.estimates
            .map(|e| e.median >= 5.0 && e.median <= 33.0)
            .unwrap_or(false)
    });
    assert!(hit, "simplified algorithm never produced a Θ(log n) median");
}
