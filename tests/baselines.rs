//! The comparison story (paper §1.2): what breaks without the paper's
//! protocol, and what it costs.

use dynamic_size_counting::dsc::{DscConfig, DynamicSizeCounting};
use dynamic_size_counting::model::MemoryFootprint;
use dynamic_size_counting::protocols::{De22Counting, StaticGrvCounting};
use dynamic_size_counting::sim::{AdversarySchedule, Experiment, PopulationEvent};

#[test]
fn static_counter_breaks_dsc_adapts() {
    let n = 2_048;
    let survivors = 32;
    let schedule = || AdversarySchedule::new().at(400.0, PopulationEvent::ResizeTo(survivors));

    let dsc = Experiment::new(DynamicSizeCounting::new(DscConfig::empirical()), n)
        .seed(31)
        .horizon(2_200.0)
        .snapshot_every(10.0)
        .schedule(schedule())
        .run();
    let stat = Experiment::new(StaticGrvCounting::new(16), n)
        .seed(31)
        .horizon(2_200.0)
        .snapshot_every(10.0)
        .schedule(schedule())
        .run();

    let dsc_before = dsc.snapshot_at(390.0).estimates.unwrap().median;
    let dsc_after = dsc.snapshot_at(2_190.0).estimates.unwrap().median;
    let stat_before = stat.snapshot_at(390.0).estimates.unwrap().median;
    let stat_after = stat.snapshot_at(2_190.0).estimates.unwrap().median;

    // Derived margin (widened from the empirical 2.0 per ROADMAP's
    // flaky-test policy): the crash shrinks the population by
    // n/survivors = 2^6, so perfectly tracking estimates drop by Δ = 6
    // log-units. Theorem 2.1 only promises constant-factor approximations
    // of log n, and Lemma 4.1's max-of-GRV estimator fluctuates around
    // log2 n — upward by c w.p. ≤ 2^−c, downward by c w.p. ≤ exp(−2^c) —
    // so the drop guaranteed at the ~95% level is only Δ − 4 = 2.
    // Requiring Δ/4 = 1.5 keeps a safety factor below even that, while
    // still cleanly separating adaptation from the static counter's 0.
    let delta = ((n / survivors) as f64).log2();
    assert!(
        dsc_after < dsc_before - delta / 4.0,
        "DSC must adapt: {dsc_before} -> {dsc_after}"
    );
    assert!(
        stat_after >= stat_before,
        "the static counter must stay stuck: {stat_before} -> {stat_after}"
    );
}

#[test]
fn de22_adapts_but_uses_more_memory() {
    let n = 1_024;
    // Steady-state memory: DSC stores 4 small counters; DE22 stores a list
    // of Θ(log n) timers — the paper's claimed improvement.
    let dsc_p = DynamicSizeCounting::new(DscConfig::empirical());
    let de_p = De22Counting::new();

    let dsc = Experiment::new(dsc_p, n)
        .seed(32)
        .horizon(300.0)
        .snapshot_every(10.0)
        .run_with_memory();
    let de = Experiment::new(de_p.clone(), n)
        .seed(32)
        .horizon(300.0)
        .snapshot_every(10.0)
        .run_with_memory();

    let dsc_bits = dsc.snapshots.last().unwrap().memory.unwrap().mean_bits;
    let de_bits = de.snapshots.last().unwrap().memory.unwrap().mean_bits;
    assert!(
        de_bits > 2.0 * dsc_bits,
        "DE22 ({de_bits:.1} bits) should cost well over 2× DSC ({dsc_bits:.1} bits)"
    );

    // And DE22 does adapt (it solves the same problem).
    let survivors = 32;
    let schedule = AdversarySchedule::new().at(300.0, PopulationEvent::ResizeTo(survivors));
    let de_dyn = Experiment::new(de_p, n)
        .seed(33)
        .horizon(1_500.0)
        .snapshot_every(10.0)
        .schedule(schedule)
        .run();
    let before = de_dyn.snapshot_at(290.0).estimates.unwrap().median;
    // DE22's first-missing-value estimate adapts, but it is only correct
    // w.h.p. *per instant*: whenever one agent samples a rare high GRV, the
    // value min-propagates epidemically and the whole population briefly
    // over-estimates again until the detection timers re-expire (Doty &
    // Eftekhari 2022 bound the estimate per time unit w.h.p., not almost
    // always — see also the paper's §1.2 contrast). A single-snapshot
    // readout therefore flakes on those ~Θ(threshold)-long spikes; read the
    // median over the final 300 time units instead of one instant.
    let mut tail: Vec<f64> = de_dyn
        .snapshots
        .iter()
        .filter(|s| s.parallel_time >= 1_200.0)
        .filter_map(|s| s.estimates.map(|e| e.median))
        .collect();
    tail.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN medians"));
    let after = tail[tail.len() / 2];
    // Derived margin (widened from the empirical Δ/4 per ROADMAP's
    // flaky-test policy): the crash is n/survivors = 2^5, so a perfectly
    // tracking first-missing-value estimate drops by Δ = 5. Doty &
    // Eftekhari's readout is correct within O(1) of log2 n only w.h.p.
    // per instant (the spike caveat above), and the tail median smooths
    // but does not eliminate that slack — with the same ±2-per-side
    // GRV-tail budget as the DSC margin, the *guaranteed* drop is only
    // Δ − 4 = 1 (before may read 2 low, after may read 2 high). The old
    // Δ/4 = 1.25 threshold exceeded that guarantee, so a run landing in
    // the legal-but-unlucky corner flaked. Require half the guaranteed
    // drop, (Δ − 4)/2 = 0.5: inside the w.h.p. bound with margin to
    // spare, yet still strictly positive — a stuck estimate (drop 0)
    // keeps failing.
    let delta = ((n / survivors) as f64).log2();
    assert!(
        after < before - (delta - 4.0) / 2.0,
        "DE22 must adapt to the crash: {before} -> {after}"
    );
}

#[test]
fn memory_footprints_have_the_claimed_shapes() {
    // Single-state sanity of the accounting itself.
    let dsc_p = DynamicSizeCounting::new(DscConfig::empirical());
    let de_p = De22Counting::new();
    let mut dsc_state = pp_model::Protocol::initial_state(&dsc_p);
    dsc_state.max = 20;
    dsc_state.last_max = 18;
    dsc_state.time = 120;
    dsc_state.interactions = 300;
    // 5 + 5 + (7+1) + 9 = 27 bits at log-n-ish magnitudes.
    assert_eq!(dsc_state.memory_bits(), 27);

    let mut de_state = pp_model::Protocol::initial_state(&de_p);
    de_state.timers = (0..20).map(|i| de_p.threshold(i + 1) / 2).collect();
    assert!(
        de_state.memory_bits() > 100,
        "a 20-entry timer list costs >100 bits, got {}",
        de_state.memory_bits()
    );
}

#[test]
fn uniformity_no_parameter_encodes_n() {
    // A uniformity smoke test: the same protocol value (same transition
    // function) serves populations of very different sizes.
    let p = DynamicSizeCounting::new(DscConfig::empirical());
    for n in [32usize, 1_024] {
        let r = Experiment::new(p, n).seed(34).horizon(400.0).run();
        let med = r.snapshots.last().unwrap().estimates.unwrap().median;
        let log_kn = ((16 * n) as f64).log2();
        assert!(
            med >= 0.4 * log_kn && med <= 2.5 * log_kn,
            "n = {n}: estimate {med} not tracking log2(16n) = {log_kn:.1}"
        );
    }
}
