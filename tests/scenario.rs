//! Scenario-engine integration: declarative traces as reproducible grid
//! axes, paper-derived re-convergence assertions, and graceful failure
//! paths.
//!
//! Margins follow the ROADMAP flaky-test policy: every numeric band is
//! derived from a paper bound in a comment at the assertion site, never
//! tuned to make a seed pass.

use dynamic_size_counting::protocols::Infection;
use dynamic_size_counting::sim::scenario::{self, TraceSegment};
use dynamic_size_counting::sim::{
    AdversarySchedule, BackendError, CountSimulator, RunResult, ScenarioTrace, ScheduleError,
    Sweep, TrackedEstimates, BUILTIN_TRACES,
};

fn log2n(n: usize) -> f64 {
    (n as f64).log2()
}

/// First snapshot time at or after `from` at which every agent holds an
/// estimate.
fn coverage_time_after(run: &RunResult, from: f64) -> Option<f64> {
    run.snapshots
        .iter()
        .find(|s| s.parallel_time >= from && s.estimates.is_some_and(|e| e.without_estimate == 0))
        .map(|s| s.parallel_time)
}

#[test]
fn every_builtin_trace_is_a_runnable_sweep_axis() {
    // The whole catalog on one grid: each builtin compiles per cell and
    // runs to the horizon without panicking, on both count backends.
    let mut sweep = Sweep::new(Infection::new())
        .populations([600, 1200])
        .runs(2)
        .master_seed(5)
        .horizon(40.0)
        .init_counts(|n| vec![n - 1, 1]);
    for name in BUILTIN_TRACES {
        sweep = sweep.scenario(name, scenario::builtin(name).expect("catalog name"));
    }
    let r = sweep.run_counted();
    assert_eq!(r.cells.len(), 2 * BUILTIN_TRACES.len());
    for cell in &r.cells {
        assert_eq!(cell.runs.len(), 2);
        assert!(BUILTIN_TRACES.contains(&cell.schedule.as_str()));
    }
}

#[test]
fn trace_axes_are_bit_identical_across_thread_counts() {
    // The tentpole determinism contract: randomized trace placement
    // (crash-burst times) flows through the Sweep seed chain, so the
    // whole grid — schedules included — is a pure function of the master
    // seed, bit-for-bit, on any worker count. Run on both count backends.
    let sweep = |threads: usize| {
        Sweep::new(Infection::new())
            .populations([800, 1600])
            .scenario(
                "bursts",
                ScenarioTrace::new().segment(TraceSegment::CrashBursts {
                    start: 2.0,
                    end: 12.0,
                    bursts: 3,
                    fraction: 0.2,
                    volley: 3,
                    spacing: 0.2,
                }),
            )
            .scenario(
                "flash",
                ScenarioTrace::new().segment(TraceSegment::FlashCrowd {
                    at: 5.0,
                    factor: 2.5,
                    dwell: 6.0,
                    steps: 4,
                }),
            )
            .runs(3)
            .master_seed(97)
            .horizon(25.0)
            .threads(threads)
            .init_counts(|n| vec![n - 1, 1])
    };
    assert_eq!(
        sweep(1).run_counted().cells,
        sweep(4).run_counted().cells,
        "count backend must be thread-identical under trace axes"
    );
    assert_eq!(
        sweep(1).run_batched().cells,
        sweep(4).run_batched().cells,
        "batched backend must be thread-identical under trace axes"
    );
}

#[test]
fn flash_crowd_recovery_lands_in_the_lemma_window() {
    // Re-convergence band, derived from the paper (satellite of the
    // ROADMAP flaky-test policy):
    //
    // A flash crowd at t = 6 injects (factor − 1)·n = 2n fresh
    // susceptible agents into a fully covered population of n. Lemma 4.2
    // (k = 1) bounds a one-way epidemic from a *single* source over n'
    // agents by 8·log2 n' parallel time; here n of the n' = 3n agents are
    // already infected, so the spread is strictly faster than the
    // single-source case the bound covers. Budget: full coverage of the
    // grown population by t_add + 8·log2(3n). The draining ResizeTo steps
    // afterwards only remove agents uniformly, which cannot uncover a
    // covered population — so coverage must also *hold* to the horizon
    // (the Theorem 2.1 shape: converge once, then hold).
    let n = 2_000usize;
    let at = 6.0;
    let factor = 3.0;
    let dwell = 30.0;
    let r = Sweep::new(Infection::new())
        .populations([n])
        .scenario(
            "flash",
            ScenarioTrace::new().segment(TraceSegment::FlashCrowd {
                at,
                factor,
                dwell,
                steps: 5,
            }),
        )
        .runs(8)
        .master_seed(103)
        .horizon(at + dwell + 5.0)
        .init_counts(|n| vec![n - 1, 1])
        .run_counted();
    let budget = at + 8.0 * log2n(3 * n);
    for run in &r.cells[0].runs {
        let covered =
            coverage_time_after(run, at).expect("the grown population must reach full coverage");
        assert!(
            covered <= budget,
            "flash-crowd recovery at {covered:.1} pt blew the Lemma 4.2 budget {budget:.1}"
        );
        // Holding: every snapshot from recovery to the horizon stays
        // covered (uniform drain cannot uncover).
        for s in &run.snapshots {
            if s.parallel_time >= covered {
                assert_eq!(s.estimates.unwrap().without_estimate, 0);
            }
        }
        assert_eq!(run.final_n, n, "the drain returns to the entry population");
    }
}

#[test]
fn ramp_lands_exactly_on_its_target_fraction() {
    let n = 4_000usize;
    let r = Sweep::new(Infection::new())
        .populations([n])
        .scenario(
            "ramp",
            ScenarioTrace::new().segment(TraceSegment::Ramp {
                start: 2.0,
                end: 10.0,
                to_fraction: 0.25,
                steps: 8,
            }),
        )
        .runs(2)
        .master_seed(11)
        .horizon(12.0)
        .init_counts(|n| vec![n - 1, 1])
        .run_counted();
    for run in &r.cells[0].runs {
        assert_eq!(run.final_n, n / 4, "ramp must land exactly on 0.25·n");
    }
}

#[test]
fn same_master_seed_reproduces_trace_schedules_across_processes() {
    // Compiling a trace directly with the documented seed chain
    // reproduces exactly the schedule the sweep ran — the on-disk
    // reproducibility story for trace-generated figures.
    let trace = ScenarioTrace::new().segment(TraceSegment::CrashBursts {
        start: 1.0,
        end: 9.0,
        bursts: 2,
        fraction: 0.4,
        volley: 2,
        spacing: 0.5,
    });
    let a = trace.compile(5_000, 12345).unwrap();
    let b = trace.compile(5_000, 12345).unwrap();
    assert_eq!(a.events(), b.events());
    let c = trace.compile(5_000, 54321).unwrap();
    assert_ne!(
        a.events(),
        c.events(),
        "different seeds place bursts differently"
    );
}

#[test]
fn invalid_traces_and_impossible_schedules_fail_typed_not_panicking() {
    // A structurally invalid trace: typed error naming the segment.
    let bad = Sweep::new(Infection::new())
        .populations([100])
        .scenario(
            "bad",
            ScenarioTrace::new().segment(TraceSegment::Diurnal {
                start: 1.0,
                period: 4.0,
                cycles: 2,
                low_fraction: 1.5, // troughs above the peak: nonsense
                steps_per_cycle: 4,
            }),
        )
        .runs(1)
        .horizon(10.0)
        .init_counts(|n| vec![n - 1, 1])
        .run_on::<CountSimulator<Infection>, _>(TrackedEstimates)
        .unwrap_err();
    assert!(matches!(
        bad,
        BackendError::InvalidSchedule {
            backend: "count",
            error: ScheduleError::InvalidTraceParameter {
                segment: "diurnal",
                ..
            }
        }
    ));

    // A structurally valid schedule that is impossible for the cell's
    // population: rejected before any run, with the offending numbers.
    let impossible = Sweep::new(Infection::new())
        .populations([50])
        .schedule(
            "overkill",
            AdversarySchedule::new().at(
                1.0,
                dynamic_size_counting::sim::PopulationEvent::RemoveUniform(60),
            ),
        )
        .runs(1)
        .horizon(5.0)
        .init_counts(|n| vec![n - 1, 1])
        .run_on::<CountSimulator<Infection>, _>(TrackedEstimates)
        .unwrap_err();
    assert_eq!(
        impossible,
        BackendError::InvalidSchedule {
            backend: "count",
            error: ScheduleError::RemovesTooMany {
                at: 1.0,
                remove: 60,
                population: 50
            }
        }
    );
}
