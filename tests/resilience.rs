//! Resilient grid execution end to end, through the public umbrella API:
//! a panicking cell is isolated into a typed outcome, healthy cells stay
//! bit-identical to an uninjected grid, and faulted grids are
//! deterministic across thread counts.

use dynamic_size_counting::dsc::{DscConfig, DynamicSizeCounting};
use dynamic_size_counting::model::Protocol;
use dynamic_size_counting::sim::{
    CellOutcome, FaultPlan, ResiliencePolicy, Simulator, Sweep, TrackedEstimates, WithRecovery,
};

fn protocol() -> DynamicSizeCounting {
    DynamicSizeCounting::new(DscConfig::empirical())
}

fn grid(populations: &[usize], threads: usize) -> Sweep<DynamicSizeCounting> {
    Sweep::new(protocol())
        .populations(populations.iter().copied())
        .runs(2)
        .master_seed(99)
        .threads(threads)
        .horizon(30.0)
        .snapshot_every(5.0)
}

#[test]
fn a_panicking_cell_leaves_the_rest_of_the_grid_intact() {
    // The n = 96 cell's init panics; the n = 48 cell must be untouched.
    let poisoned = |threads: usize| {
        grid(&[48, 96], threads)
            .init_with_n(|n, i| {
                assert!(n != 96, "poisoned cell");
                let _ = i;
                protocol().initial_state()
            })
            .run_resilient_on::<Simulator<_>, _>(TrackedEstimates, ResiliencePolicy::default())
            .expect("no fault plan, nothing to refuse up front")
    };
    let serial = poisoned(1);
    let parallel = poisoned(4);
    assert_eq!(
        serial.cells, parallel.cells,
        "per-cell outcomes must not depend on the thread count"
    );

    let summary = serial.summary();
    assert_eq!((summary.completed, summary.panicked), (2, 2));
    let bad = serial.cell(96, "static").expect("the poisoned cell exists");
    assert!(bad
        .outcomes
        .iter()
        .all(|o| matches!(o, CellOutcome::Panicked(msg) if msg.contains("poisoned cell"))));

    // The healthy cell equals the same cell from a grid that never
    // contained the poisoned population: per-cell seeding isolates cells.
    let healthy = grid(&[48], 1)
        .init_with_n(|_, _| protocol().initial_state())
        .run_resilient_on::<Simulator<_>, _>(TrackedEstimates, ResiliencePolicy::default())
        .unwrap();
    let good = serial.cell(48, "static").unwrap();
    assert_eq!(
        good.completed_runs().collect::<Vec<_>>(),
        healthy.cells[0].completed_runs().collect::<Vec<_>>(),
        "healthy rows must be bit-identical to the uninjected grid"
    );
}

#[test]
fn faulted_grids_are_deterministic_and_record_the_departure() {
    let run = |threads: usize| {
        let plan = FaultPlan::new(5).corrupt_random(10.0, 0.25);
        grid(&[64], threads)
            .run_faulted_on::<Simulator<_>, _>(
                &plan,
                WithRecovery::band(TrackedEstimates, 0.5, 4.0),
                ResiliencePolicy {
                    budget_factor: Some(3.0),
                    retries: 0,
                },
            )
            .expect("a well-formed plan compiles")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.cells, parallel.cells);
    assert!(serial.summary().all_completed());
    for result in serial.cells[0].completed_runs() {
        assert!(
            !result.recovery.is_empty(),
            "the recovery observer must record band transitions"
        );
    }
}
