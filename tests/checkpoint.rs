//! Checkpoint/resume: the bit-identity contract end to end, plus every
//! typed failure path of the on-disk format.
//!
//! The headline guarantee: a run split across a save/load cycle produces
//! a [`RunResult`] *equal* to the uninterrupted run — same snapshots,
//! same final population, same everything — because the drive loop only
//! pauses on snapshot-grid boundaries the whole run also hits, and the
//! checkpoint carries the full RNG state. Adversary events straddle every
//! split point here on purpose.

use dynamic_size_counting::protocols::{BoundedChvp, Infection};
use dynamic_size_counting::sim::{
    AdversarySchedule, BatchedCountSimulator, CellSpec, CheckpointError, CheckpointOutcome,
    Checkpointable, CountSimulator, PopulationEvent, RunCheckpoint, RunResult, TrackedEstimates,
};

fn finished(outcome: CheckpointOutcome) -> RunResult {
    match outcome {
        CheckpointOutcome::Finished(r) => r,
        CheckpointOutcome::Paused(c) => {
            panic!(
                "expected a finished run, got a pause at {}",
                c.parallel_time()
            )
        }
    }
}

fn paused(outcome: CheckpointOutcome) -> RunCheckpoint {
    match outcome {
        CheckpointOutcome::Finished(_) => panic!("expected a pause, the run finished"),
        CheckpointOutcome::Paused(c) => c,
    }
}

/// A churn schedule with events on both sides of every split point used
/// below (splits at 5 and 9; events at 3, 7, and 11).
fn straddling_schedule() -> AdversarySchedule {
    AdversarySchedule::new()
        .at(3.0, PopulationEvent::RemoveUniform(200))
        .at(7.0, PopulationEvent::Add(150))
        .at(11.0, PopulationEvent::RemoveLargestEstimates(50))
}

fn infection_spec(
    schedule: &AdversarySchedule,
) -> CellSpec<'_, <Infection as dynamic_size_counting::model::Protocol>::State> {
    let n = 2_000usize;
    CellSpec {
        n,
        seed: 7,
        horizon: 14.0,
        snapshot_every: 1.0,
        schedule,
        init_agents: None,
        init_counts: Some(vec![n as u64 - 1, 1]),
        interaction_budget: None,
        parallel: None,
    }
}

#[test]
fn split_run_is_bit_identical_on_the_count_backend() {
    let schedule = straddling_schedule();
    let spec = infection_spec(&schedule);

    let whole = finished(
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, f64::INFINITY)
            .unwrap(),
    );

    // Split through the on-disk format, not just in memory.
    let ck = paused(
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, 5.0).unwrap(),
    );
    assert_eq!(ck.backend(), "count");
    assert!(
        ck.parallel_time() >= 5.0,
        "pause lands at or past the stop time"
    );
    assert!(
        !ck.snapshots().is_empty(),
        "the first leg's snapshots travel inside the checkpoint"
    );
    let path = std::env::temp_dir().join(format!("dsc_ckpt_count_{}.bin", std::process::id()));
    ck.save(&path).unwrap();
    let loaded = RunCheckpoint::load(&path).unwrap();
    assert_eq!(loaded, ck, "the on-disk round trip is lossless");
    let split = finished(
        CountSimulator::resume_cell(
            Infection::new(),
            &spec,
            &TrackedEstimates,
            &loaded,
            f64::INFINITY,
        )
        .unwrap(),
    );
    let _ = std::fs::remove_file(&path);

    assert_eq!(split, whole, "split and uninterrupted runs must be equal");
}

#[test]
fn split_run_is_bit_identical_on_the_batched_backend() {
    // Well above EXACT_POPULATION_THRESHOLD so tau-leaping genuinely
    // carries the state across the checkpoint.
    let n = 50_000usize;
    let schedule = AdversarySchedule::new()
        .at(3.0, PopulationEvent::RemoveUniform(5_000))
        .at(8.0, PopulationEvent::Add(2_500));
    let spec = CellSpec {
        n,
        seed: 11,
        horizon: 12.0,
        snapshot_every: 1.0,
        schedule: &schedule,
        init_agents: None,
        init_counts: Some(vec![n as u64 - 1, 1]),
        interaction_budget: None,
        parallel: None,
    };

    let whole = finished(
        BatchedCountSimulator::run_cell_until(
            Infection::new(),
            &spec,
            &TrackedEstimates,
            f64::INFINITY,
        )
        .unwrap(),
    );
    let ck = paused(
        BatchedCountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, 5.0)
            .unwrap(),
    );
    assert_eq!(ck.backend(), "batched-count");
    let bytes = ck.to_bytes();
    let loaded = RunCheckpoint::from_bytes(&bytes).unwrap();
    let split = finished(
        BatchedCountSimulator::resume_cell(
            Infection::new(),
            &spec,
            &TrackedEstimates,
            &loaded,
            f64::INFINITY,
        )
        .unwrap(),
    );
    assert_eq!(split, whole, "batched split must replay bit for bit");
}

#[test]
fn a_resumed_run_can_pause_again() {
    // Three legs: 0→5, 5→9, 9→finish. Same result as the whole run.
    let schedule = straddling_schedule();
    let spec = infection_spec(&schedule);
    let whole = finished(
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, f64::INFINITY)
            .unwrap(),
    );
    let leg1 = paused(
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, 5.0).unwrap(),
    );
    let leg2 = paused(
        CountSimulator::resume_cell(Infection::new(), &spec, &TrackedEstimates, &leg1, 9.0)
            .unwrap(),
    );
    assert!(leg2.parallel_time() > leg1.parallel_time());
    assert!(leg2.interactions() > leg1.interactions());
    let split = finished(
        CountSimulator::resume_cell(
            Infection::new(),
            &spec,
            &TrackedEstimates,
            &leg2,
            f64::INFINITY,
        )
        .unwrap(),
    );
    assert_eq!(split, whole, "a three-leg split must still be exact");
}

#[test]
fn stopping_past_the_horizon_just_finishes() {
    let schedule = AdversarySchedule::new();
    let spec = infection_spec(&schedule);
    let outcome =
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, 100.0).unwrap();
    assert!(matches!(outcome, CheckpointOutcome::Finished(_)));
}

#[test]
fn malformed_files_yield_typed_errors() {
    let schedule = straddling_schedule();
    let spec = infection_spec(&schedule);
    let ck = paused(
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, 5.0).unwrap(),
    );
    let good = ck.to_bytes();
    assert_eq!(
        RunCheckpoint::from_bytes(&good).unwrap(),
        ck,
        "the pristine bytes parse back exactly"
    );

    // Not a checkpoint at all.
    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        RunCheckpoint::from_bytes(&bad_magic),
        Err(CheckpointError::BadMagic)
    ));

    // A future format version: refused by name, not misparsed.
    let mut future = good.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        RunCheckpoint::from_bytes(&future),
        Err(CheckpointError::UnsupportedVersion { found: 99 })
    ));

    // Cut anywhere in the payload: Truncated, never a panic. Sweep a few
    // cut points including the empty file and a missing checksum tail.
    for cut in [0, 7, 12, good.len() / 2, good.len() - 8, good.len() - 1] {
        assert!(
            matches!(
                RunCheckpoint::from_bytes(&good[..cut]),
                Err(CheckpointError::Truncated)
            ),
            "cut at {cut} must report Truncated"
        );
    }

    // A flipped payload byte (inside the count vector, so the structure
    // still parses): caught by the trailing checksum.
    let mut flipped = good.clone();
    let counts_offset = 8 + 4 + 1 + 8 + 32 + 8 * 7 + 8; // header + fixed fields + counts len
    flipped[counts_offset + 2] ^= 0x40;
    assert!(matches!(
        RunCheckpoint::from_bytes(&flipped),
        Err(CheckpointError::ChecksumMismatch)
    ));

    // Bytes appended after the checksum: structurally refused.
    let mut trailing = good.clone();
    trailing.push(0);
    assert!(matches!(
        RunCheckpoint::from_bytes(&trailing),
        Err(CheckpointError::Corrupt { .. })
    ));

    // Loading a file that does not exist surfaces the I/O error.
    let missing = std::env::temp_dir().join("dsc_ckpt_does_not_exist.bin");
    assert!(matches!(
        RunCheckpoint::load(&missing),
        Err(CheckpointError::Io(_))
    ));
}

#[test]
fn save_replaces_torn_files_atomically() {
    let schedule = straddling_schedule();
    let spec = infection_spec(&schedule);
    let ck5 = paused(
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, 5.0).unwrap(),
    );
    let ck9 = paused(
        CountSimulator::resume_cell(Infection::new(), &spec, &TrackedEstimates, &ck5, 9.0).unwrap(),
    );
    let path = std::env::temp_dir().join(format!("dsc_ckpt_torn_{}.bin", std::process::id()));
    let tmp = std::env::temp_dir().join(format!("dsc_ckpt_torn_{}.bin.tmp", std::process::id()));

    // A stale temp file from a crashed earlier save must not stop a new
    // save, and must not survive it.
    std::fs::write(&tmp, b"crashed mid-write").unwrap();
    ck5.save(&path).unwrap();
    assert!(!tmp.exists(), "save must clean up the temp path it owns");
    assert_eq!(RunCheckpoint::load(&path).unwrap(), ck5);

    // Simulate the torn write a non-atomic saver would leave behind: the
    // file exists but holds only a prefix of a checkpoint.
    let good = std::fs::read(&path).unwrap();
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    assert!(
        matches!(RunCheckpoint::load(&path), Err(CheckpointError::Truncated)),
        "a torn checkpoint is refused by name, never misparsed"
    );

    // Saving over the torn file repairs it in one atomic step.
    ck9.save(&path).unwrap();
    assert!(!tmp.exists());
    assert_eq!(
        RunCheckpoint::load(&path).unwrap(),
        ck9,
        "the replacement is the complete new checkpoint, not a blend"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn resume_pins_backend_and_spec() {
    let schedule = straddling_schedule();
    let spec = infection_spec(&schedule);
    let ck = paused(
        CountSimulator::run_cell_until(Infection::new(), &spec, &TrackedEstimates, 5.0).unwrap(),
    );

    // Wrong backend: a count checkpoint cannot resume on the batched
    // simulator (its trajectory would diverge above the exact threshold).
    assert!(matches!(
        BatchedCountSimulator::resume_cell(
            Infection::new(),
            &spec,
            &TrackedEstimates,
            &ck,
            f64::INFINITY
        ),
        Err(CheckpointError::BackendMismatch {
            expected: "batched-count",
            found: "count"
        })
    ));

    // Wrong protocol: the state space gives it away.
    let chvp_spec = CellSpec {
        n: spec.n,
        seed: spec.seed,
        horizon: spec.horizon,
        snapshot_every: spec.snapshot_every,
        schedule: spec.schedule,
        init_agents: None,
        init_counts: Some({
            let mut counts = vec![0u64; 11];
            counts[10] = spec.n as u64;
            counts
        }),
        interaction_budget: None,
        parallel: None,
    };
    assert!(matches!(
        CountSimulator::resume_cell(
            BoundedChvp::new(10),
            &chvp_spec,
            &TrackedEstimates,
            &ck,
            f64::INFINITY
        ),
        Err(CheckpointError::StateSpaceMismatch {
            expected: 11,
            found: 2
        })
    ));

    // Spec drift: each divergence is named.
    let mut wrong_seed = infection_spec(&schedule);
    wrong_seed.seed = 8;
    assert!(matches!(
        CountSimulator::resume_cell(
            Infection::new(),
            &wrong_seed,
            &TrackedEstimates,
            &ck,
            f64::INFINITY
        ),
        Err(CheckpointError::SpecMismatch { what: "seed" })
    ));

    let mut wrong_horizon = infection_spec(&schedule);
    wrong_horizon.horizon = 20.0;
    assert!(matches!(
        CountSimulator::resume_cell(
            Infection::new(),
            &wrong_horizon,
            &TrackedEstimates,
            &ck,
            f64::INFINITY
        ),
        Err(CheckpointError::SpecMismatch { what: "horizon" })
    ));

    let other_schedule = AdversarySchedule::new().at(3.0, PopulationEvent::RemoveUniform(199));
    let wrong_schedule = infection_spec(&other_schedule);
    assert!(matches!(
        CountSimulator::resume_cell(
            Infection::new(),
            &wrong_schedule,
            &TrackedEstimates,
            &ck,
            f64::INFINITY
        ),
        Err(CheckpointError::SpecMismatch { what: "schedule" })
    ));
}
