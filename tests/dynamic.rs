//! The dynamic setting: the estimate adapts when the adversary changes the
//! population (the paper's headline property and its Fig. 4).

use dynamic_size_counting::dsc::{DscConfig, DynamicSizeCounting};
use dynamic_size_counting::sim::{AdversarySchedule, Experiment, PopulationEvent, RunResult};

fn protocol() -> DynamicSizeCounting {
    DynamicSizeCounting::new(DscConfig::empirical())
}

fn median_at(r: &RunResult, t: f64) -> f64 {
    r.snapshot_at(t).estimates.expect("estimates").median
}

/// Median of the snapshot medians over a time window — smooths the ±2
/// per-round fluctuation of max-of-GRV estimates at small populations.
fn windowed_median(r: &RunResult, from: f64, to: f64) -> f64 {
    let samples: Vec<f64> = r
        .snapshots
        .iter()
        .filter(|s| s.parallel_time >= from && s.parallel_time <= to)
        .filter_map(|s| s.estimates.map(|e| e.median))
        .collect();
    pp_analysis::median(&samples).expect("samples in window")
}

#[test]
fn estimate_drops_after_crash() {
    // 8192 → 32: log2 drops by 8; the estimate must follow within a few
    // rounds (round ≈ 15·τ1·log n ≈ 250 parallel time here).
    let result = Experiment::new(protocol(), 8_192)
        .seed(11)
        .horizon(2_600.0)
        .snapshot_every(10.0)
        .schedule(AdversarySchedule::new().at(600.0, PopulationEvent::ResizeTo(32)))
        .run();
    let before = windowed_median(&result, 400.0, 590.0);
    let after = windowed_median(&result, 2_100.0, 2_600.0);
    assert!(
        before >= 14.0,
        "pre-crash estimate should be ≈ log2(16·8192) = 17, got {before}"
    );
    assert!(
        after <= before - 4.0,
        "estimate must adapt downward: {before} -> {after}"
    );
    assert!(
        after <= 3.0 * 5.0,
        "post-crash estimate {after} should be within 3× log2(32) = 5"
    );
}

#[test]
fn estimate_rises_after_growth() {
    let result = Experiment::new(protocol(), 64)
        .seed(12)
        .horizon(1_500.0)
        .snapshot_every(10.0)
        .schedule(AdversarySchedule::new().at(400.0, PopulationEvent::Add(16_320)))
        .run();
    let before = median_at(&result, 390.0);
    let after = median_at(&result, 1_490.0);
    assert!(
        after >= before + 2.0,
        "estimate must adapt upward after 64 → 16384: {before} -> {after}"
    );
}

#[test]
fn adversarial_removal_of_largest_estimates_recovers() {
    // The poacher variant: removing exactly the agents with the largest
    // estimates is the worst case for max-based estimates — the protocol
    // must re-converge among the survivors.
    let result = Experiment::new(protocol(), 4_096)
        .seed(13)
        .horizon(2_500.0)
        .snapshot_every(10.0)
        .schedule(
            AdversarySchedule::new().at(500.0, PopulationEvent::RemoveLargestEstimates(3_968)),
        )
        .run();
    assert_eq!(result.final_n, 128);
    let after = median_at(&result, 2_490.0);
    assert!(
        (3.0..22.0).contains(&after),
        "survivors should settle near log2(16·128) = 11, got {after}"
    );
    // The survivors must have re-synchronized: min and max agree closely.
    let last = result.snapshots.last().unwrap().estimates.unwrap();
    assert!(
        last.max - last.min <= 8.0,
        "post-poaching spread too wide: [{}, {}]",
        last.min,
        last.max
    );
}

#[test]
fn repeated_oscillation_of_population_size() {
    // Grow/shrink repeatedly; the protocol should never wedge: estimates
    // keep tracking the current size direction after each change.
    let schedule = AdversarySchedule::new()
        .at(400.0, PopulationEvent::ResizeTo(4_096))
        .at(1_200.0, PopulationEvent::ResizeTo(256))
        .at(2_200.0, PopulationEvent::ResizeTo(2_048));
    let result = Experiment::new(protocol(), 256)
        .seed(14)
        .horizon(3_400.0)
        .snapshot_every(10.0)
        .schedule(schedule)
        .run();
    let e_grow = median_at(&result, 1_150.0);
    let e_shrink = median_at(&result, 2_150.0);
    let e_end = median_at(&result, 3_390.0);
    assert!(
        e_grow > median_at(&result, 350.0),
        "growth 256→4096 must raise the estimate"
    );
    assert!(e_shrink < e_grow, "shrink 4096→256 must lower the estimate");
    assert!(e_end >= e_shrink, "regrowth 256→2048 must raise it again");
}

#[test]
fn lone_survivor_then_regrowth() {
    // Degenerate dynamics: shrink to below two agents (no interactions
    // possible), then regrow — the protocol must pick up where time left
    // off without panicking.
    let schedule = AdversarySchedule::new()
        .at(100.0, PopulationEvent::ResizeTo(1))
        .at(150.0, PopulationEvent::Add(511));
    let result = Experiment::new(protocol(), 512)
        .seed(15)
        .horizon(800.0)
        .snapshot_every(10.0)
        .schedule(schedule)
        .run();
    assert_eq!(result.final_n, 512);
    let after = median_at(&result, 790.0);
    assert!(
        (4.0..30.0).contains(&after),
        "post-regrowth estimate should be near log2(16·512) = 13, got {after}"
    );
}
