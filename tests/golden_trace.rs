//! Golden trace: the first 64 interactions of a seeded DSC run, pinned
//! pair-by-pair and field-by-field.
//!
//! The hot loop has been rewritten for speed more than once (single-draw
//! pair sampling, chunked RNG batching, monomorphized transitions); this
//! test guarantees such work can never *silently* change trajectory
//! semantics again. If an engine change is MEANT to alter the trace — a
//! different draw scheme, a different word interleaving, a re-seed — update
//! the constants below by running
//! `cargo test --test golden_trace print_trace -- --ignored --nocapture`
//! (`--ignored` is required: the generator is skipped in normal runs) and
//! leave a comment in the commit explaining why the trajectory legitimately
//! moved.
//! An *unintentional* diff here is a bug: bit-identical replay of recorded
//! experiments is part of the reproduction's contract.

use dynamic_size_counting::dsc::{DscState, DynamicSizeCounting};
use dynamic_size_counting::sim::observer::Observer;
use dynamic_size_counting::sim::Simulator;

const SEED: u64 = 0xD5C0_2024;
const N: usize = 64;
const STEPS: usize = 64;

/// One recorded interaction: pair indices + the initiator's post-state
/// (the protocol is one-way; the responder never changes).
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct Entry {
    u: u32,
    v: u32,
    max: u64,
    last_max: u64,
    time: i64,
    interactions: u64,
}

#[derive(Default)]
struct Recorder {
    entries: Vec<Entry>,
}

impl Observer<DynamicSizeCounting> for Recorder {
    fn pre_interact(
        &mut self,
        _: &DynamicSizeCounting,
        _: &DscState,
        _: &DscState,
        _: usize,
        _: usize,
        _: u64,
    ) {
    }
    fn post_interact(
        &mut self,
        _: &DynamicSizeCounting,
        u: &DscState,
        _v: &DscState,
        ui: usize,
        vi: usize,
        _: u64,
    ) {
        self.entries.push(Entry {
            u: ui as u32,
            v: vi as u32,
            max: u64::from(u.max),
            last_max: u64::from(u.last_max),
            time: u.time,
            interactions: u64::from(u.interactions),
        });
    }
    fn agent_added(&mut self, _: &DynamicSizeCounting, _: &DscState) {}
    fn agent_removed(&mut self, _: &DynamicSizeCounting, _: &DscState) {}
}

fn record() -> Vec<Entry> {
    let mut sim = Simulator::with_observer(pp_bench_protocol(), N, SEED, Recorder::default());
    sim.step_n(STEPS as u64);
    sim.into_parts().1.entries
}

fn pp_bench_protocol() -> DynamicSizeCounting {
    DynamicSizeCounting::new(dynamic_size_counting::dsc::DscConfig::empirical())
}

/// Prints the current trace in `GOLDEN` source form (run with
/// `cargo test --test golden_trace print_trace -- --ignored --nocapture`
/// to regenerate the constants after an intentional engine change).
#[test]
#[ignore = "generator, not a check: prints the GOLDEN constant source"]
fn print_trace() {
    for e in record() {
        println!(
            "    ({}, {}, {}, {}, {}, {}),",
            e.u, e.v, e.max, e.last_max, e.time, e.interactions
        );
    }
}

/// `(u, v, max, lastMax, time, interactions)` after each of the first 64
/// interactions of the seeded run. Regenerate via `print_trace` — only for
/// an *intentional* engine change (see module docs).
const GOLDEN: [(u32, u32, u64, u64, i64, u64); STEPS] = [
    (55, 35, 1, 1, 5, 1),
    (5, 25, 1, 1, 5, 1),
    (42, 15, 1, 1, 5, 1),
    (7, 10, 1, 1, 5, 1),
    (62, 36, 1, 1, 5, 1),
    (53, 62, 1, 1, 5, 1),
    (51, 61, 1, 1, 5, 1),
    (42, 4, 1, 1, 5, 2),
    (28, 49, 1, 1, 5, 1),
    (16, 32, 1, 1, 5, 1),
    (58, 20, 1, 1, 5, 1),
    (19, 59, 1, 1, 5, 1),
    (62, 37, 1, 1, 5, 2),
    (40, 34, 1, 1, 5, 1),
    (11, 40, 1, 1, 5, 1),
    (31, 51, 1, 1, 5, 1),
    (17, 46, 1, 1, 5, 1),
    (13, 55, 1, 1, 5, 1),
    (42, 41, 1, 1, 5, 3),
    (17, 27, 1, 1, 5, 2),
    (24, 61, 1, 1, 5, 1),
    (55, 16, 1, 1, 4, 2),
    (52, 29, 1, 1, 5, 1),
    (18, 9, 1, 1, 5, 1),
    (47, 4, 1, 1, 5, 1),
    (17, 4, 1, 1, 5, 3),
    (7, 23, 1, 1, 5, 2),
    (61, 7, 1, 1, 5, 1),
    (63, 15, 1, 1, 5, 1),
    (26, 17, 1, 1, 5, 1),
    (36, 5, 1, 1, 5, 1),
    (61, 45, 1, 1, 5, 2),
    (56, 59, 1, 1, 5, 1),
    (30, 56, 1, 1, 5, 1),
    (42, 24, 1, 1, 4, 4),
    (18, 32, 1, 1, 5, 2),
    (8, 44, 1, 1, 5, 1),
    (48, 39, 1, 1, 5, 1),
    (11, 38, 1, 1, 5, 2),
    (47, 1, 1, 1, 5, 2),
    (20, 39, 1, 1, 5, 1),
    (55, 42, 1, 1, 3, 3),
    (21, 24, 1, 1, 5, 1),
    (20, 42, 1, 1, 4, 2),
    (12, 38, 1, 1, 5, 1),
    (28, 34, 1, 1, 5, 2),
    (58, 4, 1, 1, 5, 2),
    (22, 34, 1, 1, 5, 1),
    (26, 42, 1, 1, 4, 2),
    (59, 52, 1, 1, 5, 1),
    (49, 60, 1, 1, 5, 1),
    (29, 54, 1, 1, 5, 1),
    (8, 4, 1, 1, 5, 2),
    (43, 62, 1, 1, 5, 1),
    (60, 38, 1, 1, 5, 1),
    (40, 60, 1, 1, 4, 2),
    (58, 37, 1, 1, 5, 3),
    (29, 59, 1, 1, 4, 2),
    (54, 44, 1, 1, 5, 1),
    (23, 55, 1, 1, 5, 1),
    (45, 12, 1, 1, 5, 1),
    (25, 35, 1, 1, 5, 1),
    (60, 19, 1, 1, 4, 2),
    (47, 16, 1, 1, 4, 3),
];

#[test]
fn first_64_interactions_are_pinned() {
    let actual = record();
    assert_eq!(actual.len(), STEPS);
    for (k, (e, g)) in actual.iter().zip(GOLDEN.iter()).enumerate() {
        let g = Entry {
            u: g.0,
            v: g.1,
            max: g.2,
            last_max: g.3,
            time: g.4,
            interactions: g.5,
        };
        assert_eq!(*e, g, "trace diverged at interaction {k}");
    }
}
