//! Phase-clock properties (Theorem 2.2): bursts in which every agent ticks
//! exactly once, separated by long tick-free overlaps.

use dynamic_size_counting::analysis::{ClockDecomposition, ClockVerdict};
use dynamic_size_counting::dsc::{DscConfig, DynamicSizeCounting, Phase, PhaseCensus};
use dynamic_size_counting::sim::{Simulator, TickRecorder};

#[test]
fn converged_clock_produces_perfect_bursts() {
    let n = 512;
    let p = DynamicSizeCounting::new(DscConfig::empirical());
    let mut sim = Simulator::with_observer(p, n, 21, TickRecorder::new());
    sim.run_parallel_time(400.0); // converge
    sim.observer_mut().clear();
    sim.run_parallel_time(2_500.0);
    let events = sim.observer().events().to_vec();
    let d = ClockDecomposition::extract(&events, n);
    let v = ClockVerdict::judge(&d, n).expect("several complete bursts");
    assert!(
        v.perfect_bursts >= 3,
        "expected ≥ 3 perfect bursts, got {} (broken: {})",
        v.perfect_bursts,
        v.broken_bursts
    );
    assert_eq!(v.broken_bursts, 0, "no burst may violate exactly-once");
    assert!(
        v.mean_overlap > 3.0 * v.mean_burst_width,
        "overlap ({}) must dominate burst width ({})",
        v.mean_overlap,
        v.mean_burst_width
    );
    // Round length is Θ(log n): within a generous constant band.
    let log_n = (n as f64).log2();
    assert!(
        v.mean_round >= 3.0 * log_n && v.mean_round <= 60.0 * log_n,
        "round length {} outside Θ(log n) band",
        v.mean_round
    );
}

#[test]
fn phase_census_shows_synchronized_shape_most_of_the_time() {
    // §4.1: a synchronized population is within exchange∪hold or
    // hold∪reset. Sample the census periodically after convergence.
    let n = 1_024;
    let p = DynamicSizeCounting::new(DscConfig::empirical());
    let mut sim = Simulator::with_seed(p, n, 22);
    sim.run_parallel_time(400.0);
    let mut synchronized = 0;
    let mut samples = 0;
    for _ in 0..200 {
        sim.run_parallel_time(2.0);
        let census = PhaseCensus::of(p.config(), sim.states());
        samples += 1;
        // Allow a small straggler fraction at phase boundaries: the strict
        // §4.1 shape holds between transitions.
        let near_shape = census.reset < 0.02 || census.exchange < 0.02;
        if near_shape {
            synchronized += 1;
        }
    }
    assert!(
        synchronized as f64 >= 0.9 * samples as f64,
        "population in synchronized shape only {synchronized}/{samples} samples"
    );
}

#[test]
fn ticks_are_monotone_and_roughly_uniform_across_agents() {
    let n = 256;
    let p = DynamicSizeCounting::new(DscConfig::empirical());
    let mut sim = Simulator::with_seed(p, n, 23);
    sim.run_parallel_time(3_000.0);
    let ticks: Vec<u64> = sim.states().iter().map(|s| u64::from(s.ticks)).collect();
    let min = *ticks.iter().min().unwrap();
    let max = *ticks.iter().max().unwrap();
    assert!(min >= 1, "every agent must have ticked");
    assert!(
        max - min <= 4,
        "tick counts must stay aligned (every agent once per round): [{min}, {max}]"
    );
}

#[test]
fn fresh_agents_start_in_exchange_phase() {
    use dynamic_size_counting::model::Protocol;
    let p = DynamicSizeCounting::new(DscConfig::empirical());
    let s = p.initial_state();
    assert_eq!(
        p.phase(&s),
        Phase::Exchange,
        "resetting/fresh agents enter exchange"
    );
}
