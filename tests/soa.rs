//! Struct-of-arrays engine equivalence: the `SoaSimulator` must execute
//! trajectories **bit-identical** to the agent-array `Simulator`.
//!
//! The SoA engine always runs the gathered pipeline, whose RNG word stream
//! matches the agent-array engine's on both of its paths (the sequential
//! path batches draws up front, the gathered path interleaves them — same
//! words, same order). These tests pin that equivalence at the golden-trace
//! seed, at gathered scale, for two-way protocols, under the adversary,
//! and through arena-backed payload overflow, plus the dense-lane scan
//! identity the bench scan numbers rest on. A diff here means the two
//! engines no longer replay each other's recorded experiments — the same
//! contract violation `tests/golden_trace.rs` guards within one engine.

use dynamic_size_counting::dsc::{AveragedDsc, DscConfig, DscState, DynamicSizeCounting};
use dynamic_size_counting::protocols::{De22Backing, De22Counting};
use dynamic_size_counting::sim::observer::Observer;
use dynamic_size_counting::sim::{Simulator, SoaSimulator};
use pp_model::Protocol;
use rand::Rng;

/// The golden-trace seed (`tests/golden_trace.rs`).
const SEED: u64 = 0xD5C0_2024;

/// Records every interaction's pair indices and initiator post-state, so
/// equality means pair-for-pair, field-for-field identical trajectories —
/// not merely identical endpoints.
#[derive(Default)]
struct PairTrace {
    entries: Vec<(usize, usize, DscState)>,
}

impl Observer<DynamicSizeCounting> for PairTrace {
    fn pre_interact(
        &mut self,
        _: &DynamicSizeCounting,
        _: &DscState,
        _: &DscState,
        _: usize,
        _: usize,
        _: u64,
    ) {
    }
    fn post_interact(
        &mut self,
        _: &DynamicSizeCounting,
        u: &DscState,
        _v: &DscState,
        ui: usize,
        vi: usize,
        _: u64,
    ) {
        self.entries.push((ui, vi, *u));
    }
    fn agent_added(&mut self, _: &DynamicSizeCounting, _: &DscState) {}
    fn agent_removed(&mut self, _: &DynamicSizeCounting, _: &DscState) {}
}

/// At the golden-trace seed and population, the SoA engine draws the same
/// pairs and produces the same post-states as the agent-array engine —
/// interaction by interaction, well past the pinned 64-step prefix.
#[test]
fn soa_replays_the_golden_trace_seed() {
    let p = || DynamicSizeCounting::new(DscConfig::empirical());
    let mut aos = Simulator::with_observer(p(), 64, SEED, PairTrace::default());
    let mut soa = SoaSimulator::with_observer(p(), 64, SEED, PairTrace::default());
    aos.step_n(4_096);
    soa.step_n(4_096);
    assert_eq!(soa.states_vec(), aos.states());
    let aos_trace = aos.into_parts().1.entries;
    let soa_trace = std::mem::take(&mut soa.observer_mut().entries);
    assert_eq!(soa_trace.len(), aos_trace.len());
    // First mismatch (if any) with its index, for a readable failure.
    for (k, (s, a)) in soa_trace.iter().zip(aos_trace.iter()).enumerate() {
        assert_eq!(s, a, "trajectories diverge at interaction {k}");
    }
}

/// At n = 100 000 the agent-array engine switches to its gathered
/// pipeline (the array exceeds the gather threshold); the SoA engine must
/// match that path too.
#[test]
fn soa_matches_the_gathered_large_n_path() {
    let p = || DynamicSizeCounting::new(DscConfig::empirical());
    let mut aos = Simulator::with_seed(p(), 100_000, 21);
    let mut soa = SoaSimulator::with_seed(p(), 100_000, 21);
    aos.step_n(50_000);
    soa.step_n(50_000);
    assert_eq!(soa.states_vec(), aos.states());
    assert_eq!(soa.interactions(), aos.interactions());
}

/// Payload-carrying columnar state (slot arrays in the cold region): the
/// averaged protocol crosses the gather threshold at n = 10 000 already.
#[test]
fn soa_matches_with_payload_columns() {
    let p = || AveragedDsc::new(DscConfig::empirical(), 16);
    let mut aos = Simulator::with_seed(p(), 10_000, 23);
    let mut soa = SoaSimulator::with_seed(p(), 10_000, 23);
    aos.step_n(20_000);
    soa.step_n(20_000);
    assert_eq!(soa.states_vec(), aos.states());
}

/// Two-way protocol: the responder writes back too, so the hazard rules
/// mark and scatter both sides. Discrete averaging is write-heavy on both.
#[test]
fn soa_matches_for_two_way_protocols() {
    struct Averaging;
    impl Protocol for Averaging {
        type State = u32;
        fn initial_state(&self) -> u32 {
            0
        }
        fn interact<R: Rng + ?Sized>(&self, u: &mut u32, v: &mut u32, _: &mut R) {
            let sum = *u + *v;
            *u = sum / 2;
            *v = sum - sum / 2;
        }
    }
    // This test must cover the two-way path (ONE_WAY defaults to false).
    const { assert!(!Averaging::ONE_WAY) };

    let mut aos = Simulator::with_seed(Averaging, 300, 29);
    let mut soa = SoaSimulator::with_seed(Averaging, 300, 29);
    for i in 0..10 {
        *aos.state_mut(i) = 1_000;
        soa.set_state(i, 1_000);
    }
    aos.step_n(5_000);
    soa.step_n(5_000);
    assert_eq!(soa.states_vec(), aos.states());
}

/// Adversary equivalence on the real protocol: stepping interleaved with
/// growth, uniform crashes, and targeted (largest-estimate) removals.
#[test]
fn soa_matches_under_the_adversary() {
    let p = || DynamicSizeCounting::new(DscConfig::empirical());
    let mut aos = Simulator::with_seed(p(), 512, 31);
    let mut soa = SoaSimulator::with_seed(p(), 512, 31);
    aos.step_n(10_000);
    soa.step_n(10_000);
    aos.resize_to(1_024);
    soa.resize_to(1_024);
    aos.step_n(10_000);
    soa.step_n(10_000);
    aos.remove_uniform(700);
    soa.remove_uniform(700);
    aos.remove_largest_estimates(24);
    soa.remove_largest_estimates(24);
    aos.step_n(10_000);
    soa.step_n(10_000);
    assert_eq!(soa.population(), aos.population());
    assert_eq!(soa.states_vec(), aos.states());
    assert!((soa.parallel_time() - aos.parallel_time()).abs() < 1e-9);
}

/// Arena-backed payload overflow on the SoA engine: DE22 with a
/// `De22Backing` spills timer tails into the arena, and the trajectory
/// still matches the agent-array engine running the same configuration on
/// its own backing (allocation order is part of the trajectory, so even
/// the spill handles agree).
#[test]
fn soa_matches_with_arena_backed_payloads() {
    let n = 192;
    let p = |backing| De22Counting::new().with_arena(backing);
    let aos_p = p(De22Backing::new(96, 4, n));
    let soa_p = p(De22Backing::new(96, 4, n));
    let mut aos = Simulator::with_seed(aos_p, n, 37);
    let mut soa = SoaSimulator::with_seed(soa_p, n, 37);
    aos.step_n(40_000);
    soa.step_n(40_000);
    assert_eq!(soa.states_vec(), aos.states());
    // The runs actually spilled (otherwise this tested nothing).
    let spilled = aos.states().iter().filter(|s| s.spill_len > 0).count();
    assert!(spilled > 0, "no agent spilled into the arena");
    // Full timer lists (inline prefix + arena tail) agree value-for-value.
    let soa_states = soa.states_vec();
    for (sa, sb) in aos.states().iter().zip(soa_states.iter()) {
        assert_eq!(aos.protocol().timers_vec(sa), soa.protocol().timers_vec(sb));
    }
}

/// The dense-lane scan shortcut: under the empirical configuration the
/// reported estimate *is* the effective maximum (overestimation factor 1,
/// every agent reports), so the 8-bytes-per-agent lane scan must produce
/// the exact summary of the full estimate scan. The bench scan speedups
/// (`soa_scan_speedup_vs_aos`) measure this pair.
#[test]
fn effective_max_stats_equals_estimate_stats_for_the_empirical_config() {
    let mut sim =
        SoaSimulator::with_seed(DynamicSizeCounting::new(DscConfig::empirical()), 2_000, 41);
    sim.run_parallel_time(40.0);
    let via_lanes = sim.effective_max_stats().expect("DSC columns have lanes");
    let via_loads = sim.estimate_stats().expect("agents report estimates");
    assert_eq!(via_lanes, via_loads);
}
