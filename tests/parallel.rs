//! Integration tests for the intra-run parallel stepper.
//!
//! Contract under test (see `Simulator::step_n_parallel`):
//!
//! * **Thread-count invariance** — a parallel run's results are a pure
//!   function of the seed; the thread count only changes who computes
//!   which stripe, never what is computed.
//! * **Exact equivalence on conflict-free super-blocks** — when a
//!   super-block's hazard partition leaves no colliding pair
//!   (`parallel_residue() == 0`) and the protocol draws no randomness in
//!   `interact`, the parallel stepper is bit-identical to `step_n`.
//! * **Equivalence in distribution** — full parallel runs draw from the
//!   same uniform-scheduler distribution as sequential ones: convergence
//!   bands agree and a two-sample chi-square test on epidemic spread
//!   cannot tell the two engines apart.
//! * **Typed opt-in** — `parallel` on a backend without an agent array,
//!   or under a per-interaction recording plan, fails up front with
//!   `BackendError::ParallelUnsupported`.

use dynamic_size_counting::dsc::{DscConfig, DynamicSizeCounting};
use dynamic_size_counting::protocols::Infection;
use dynamic_size_counting::sim::{
    BackendError, CountSimulator, Experiment, ParallelPolicy, RunResult, ScannedEstimates,
    Simulator, Sweep, SweepResults, TrackedEstimates,
};
use pp_model::Configuration;

/// One planted infected agent among `n - 1` susceptible ones.
fn seeded_epidemic(n: usize) -> Configuration<bool> {
    let mut config = Configuration::uniform(n, false);
    *config.get_mut(0) = true;
    config
}

/// Infected count at a snapshot: every infected agent reports an estimate,
/// so `n - without_estimate` counts them (0 when nobody reports).
fn infected(result: &RunResult, t: f64) -> u64 {
    let snap = result.snapshot_at(t);
    match &snap.estimates {
        Some(est) => snap.n as u64 - est.without_estimate,
        None => 0,
    }
}

#[test]
fn parallel_cell_rows_are_bit_identical_across_thread_counts() {
    let run = |threads| {
        Experiment::new(Infection::new(), 3_000)
            .seed(11)
            .horizon(12.0)
            .init_with(|i| i == 0)
            .parallel(ParallelPolicy::threads(threads))
            .run_on::<Simulator<Infection>, _>(ScannedEstimates)
            .expect("parallel run")
    };
    let one = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(run(threads), one, "threads = {threads} changed the rows");
    }
    // And the run did something: the epidemic spread past its seed agent.
    assert!(infected(&one, 12.0) > 1);
}

#[test]
fn sweep_level_parallel_policy_is_thread_invariant() {
    let sweep = |cell_threads, policy_threads| {
        Sweep::new(Infection::new())
            .populations([512, 2_048])
            .runs(3)
            .master_seed(9)
            .horizon(8.0)
            .init_with(|i| i == 0)
            .threads(cell_threads)
            .parallel(ParallelPolicy::threads(policy_threads))
            .run_on::<Simulator<Infection>, _>(ScannedEstimates)
            .expect("parallel sweep")
    };
    let assert_same_cells = |a: &SweepResults, b: &SweepResults| {
        assert_eq!(a.cells, b.cells);
    };
    let base = sweep(1, 1);
    // Across-cell workers and intra-run workers are independently
    // result-invariant: only wall-clock may differ.
    assert_same_cells(&sweep(4, 1), &base);
    assert_same_cells(&sweep(1, 4), &base);
    assert_same_cells(&sweep(4, 4), &base);
}

#[test]
fn parallel_conflict_free_super_blocks_match_sequential_exactly() {
    // 64 pairs touch ≤ 128 of n = 100_000 agents, so by the birthday
    // bound a super-block is conflict-free with probability ≈ exp(−128² /
    // 2n) ≈ 0.92 — and `Infection::interact` draws no randomness, so on
    // those seeds the parallel stepper must reproduce `step_n` bit for
    // bit.
    let n = 100_000;
    let count = 64;
    let mut checked = 0;
    for seed in 0..40 {
        let mut par = Simulator::from_config(Infection::new(), seeded_epidemic(n), seed);
        par.step_n_parallel(count, ParallelPolicy::threads(4));
        if par.parallel_residue() != 0 {
            continue;
        }
        let mut seq = Simulator::from_config(Infection::new(), seeded_epidemic(n), seed);
        seq.step_n(count);
        assert_eq!(par.states(), seq.states(), "seed {seed} diverged");
        assert_eq!(par.interactions(), seq.interactions());
        assert_eq!(par.parallel_time(), seq.parallel_time());
        checked += 1;
    }
    assert!(
        checked >= 10,
        "only {checked}/40 seeds drew conflict-free super-blocks; \
         the hazard partition is colliding far more than it should"
    );
}

#[test]
fn parallel_runs_converge_to_the_same_estimate_band() {
    // The quickstart contract, on both engines: after 300 parallel time
    // units the DSC median estimate sits in the Lemma 4.1 constant-factor
    // band around log2(1000) ≈ 9.97.
    let band = 5.0..=40.0;
    let run = |parallel: Option<ParallelPolicy>| {
        let mut exp = Experiment::new(DynamicSizeCounting::new(DscConfig::empirical()), 1_000)
            .seed(42)
            .horizon(300.0)
            .snapshot_every(10.0);
        if let Some(policy) = parallel {
            exp = exp.parallel(policy);
        }
        exp.run_on::<Simulator<DynamicSizeCounting>, _>(ScannedEstimates)
            .expect("run")
    };
    let sequential = run(None);
    let parallel = run(Some(ParallelPolicy::auto()));
    for (name, result) in [("sequential", &sequential), ("parallel", &parallel)] {
        let median = result
            .snapshots
            .last()
            .unwrap()
            .estimates
            .expect("estimates at horizon")
            .median;
        assert!(
            band.contains(&median),
            "{name} median {median} outside the convergence band"
        );
    }
}

#[test]
fn parallel_and_sequential_epidemic_spread_agree_in_distribution() {
    // Two-sample chi-square: 200 sequential and 200 parallel runs of the
    // one-way epidemic on n = 256, stopped mid-spread at t = 5 where the
    // infected-count distribution is wide. Pooled-quantile bins keep every
    // expected count ≥ 5; with 8 bins the statistic is chi-square(7) under
    // H0, and we accept below 24.32, the 0.1% critical value — a correct
    // engine fails with probability ~1e-3, and the seeds are fixed.
    let runs = 200u64;
    let sample = |parallel: Option<ParallelPolicy>| -> Vec<u64> {
        (0..runs)
            .map(|seed| {
                let mut exp = Experiment::new(Infection::new(), 256)
                    .seed(0xE11D + seed)
                    .horizon(5.0)
                    .snapshot_every(5.0)
                    .init_with(|i| i == 0);
                if let Some(policy) = parallel {
                    exp = exp.parallel(policy);
                }
                let result = exp
                    .run_on::<Simulator<Infection>, _>(ScannedEstimates)
                    .expect("run");
                infected(&result, 5.0)
            })
            .collect()
    };
    let sequential = sample(None);
    let parallel = sample(Some(ParallelPolicy::threads(3)));

    // Bin edges from the pooled sample's octiles, deduplicated: every bin
    // holds ≥ 400/8 = 50 pooled observations, so expected counts per
    // group are ≥ 25 ≫ 5 and the chi-square approximation is sound.
    let mut pooled: Vec<u64> = sequential.iter().chain(&parallel).copied().collect();
    pooled.sort_unstable();
    let mut edges: Vec<u64> = (1..8).map(|q| pooled[q * pooled.len() / 8]).collect();
    edges.dedup();
    let bin_of = |x: u64| edges.iter().take_while(|&&e| x >= e).count();
    let bins = edges.len() + 1;
    let mut observed = [vec![0f64; bins], vec![0f64; bins]];
    for (g, sample) in [&sequential, &parallel].into_iter().enumerate() {
        for &x in sample {
            observed[g][bin_of(x)] += 1.0;
        }
    }
    let mut chi2 = 0.0;
    for (b, (&o0, &o1)) in observed[0].iter().zip(&observed[1]).enumerate() {
        // Equal group sizes: the pooled expectation splits evenly.
        let expected = (o0 + o1) / 2.0;
        assert!(expected >= 5.0, "bin {b} too thin for chi-square");
        for o in [o0, o1] {
            let d = o - expected;
            chi2 += d * d / expected;
        }
    }
    // 0.1% critical values for 3..=7 degrees of freedom (dof = bins − 1;
    // dedup can merge octile edges when the distribution has heavy ties).
    assert!((4..=8).contains(&bins), "degenerate binning: {bins} bins");
    let critical = [16.27, 18.47, 20.52, 22.46, 24.32][bins - 4];
    assert!(
        chi2 < critical,
        "two-sample chi-square {chi2:.2} above the 0.1% critical value \
         {critical} for {} dof; sequential and parallel engines disagree \
         in distribution (bins: {observed:?})",
        bins - 1
    );
}

#[test]
fn parallel_opt_in_is_rejected_with_typed_errors_where_unsupported() {
    // A per-interaction recording plan cannot skip observer hooks.
    let err = Experiment::new(Infection::new(), 100)
        .parallel(ParallelPolicy::auto())
        .run_on::<Simulator<Infection>, _>(TrackedEstimates)
        .unwrap_err();
    match err {
        BackendError::ParallelUnsupported { backend, reason } => {
            assert_eq!(backend, "agent-array");
            assert!(reason.contains("per-interaction"), "reason: {reason}");
        }
        other => panic!("unexpected error: {other:?}"),
    }
    // The count backend has no agent array to shard.
    let err = Experiment::new(Infection::new(), 100)
        .parallel(ParallelPolicy::auto())
        .run_on::<CountSimulator<Infection>, _>(ScannedEstimates)
        .unwrap_err();
    match err {
        BackendError::ParallelUnsupported { backend, reason } => {
            assert_eq!(backend, "count");
            assert!(reason.contains("no agent array"), "reason: {reason}");
        }
        other => panic!("unexpected error: {other:?}"),
    }
    // A sweep diagnoses the same misconfiguration before any cell runs.
    let err = Sweep::new(Infection::new())
        .populations([64])
        .parallel(ParallelPolicy::auto())
        .run_on::<CountSimulator<Infection>, _>(ScannedEstimates)
        .unwrap_err();
    assert!(matches!(
        err,
        BackendError::ParallelUnsupported {
            backend: "count",
            ..
        }
    ));
}
