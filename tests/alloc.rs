//! Zero-allocation guarantee of the steady-state stepping engine.
//!
//! The gather/compute/scatter `step_block` pipeline and the inline payload
//! states were built so that steady-state stepping performs *no* heap
//! allocation: the pair buffer is on the stack, the gather scratch and the
//! hazard bitmap are preallocated in the simulator, and payload states
//! (averaged slots, composed payloads) live inline in the agent array.
//! This test pins that property with a counting global allocator — a
//! regression here means a `Vec`/`Box` crept back into a per-interaction
//! path, which at 10⁷–10⁸ interactions per second is a performance bug
//! even before the allocator lock shows up in profiles.
//!
//! The counting shim lives in this dedicated integration-test binary so
//! no other test's allocations can race the counters.

use dynamic_size_counting::dsc::{
    AveragedDsc, Composed, DscConfig, DynamicSizeCounting, TimedRumor,
};
use dynamic_size_counting::protocols::{De22Backing, De22Counting};
use dynamic_size_counting::sim::{Simulator, SoaSimulator};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Delegates to the system allocator, counting allocation calls.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation calls during `f`.
fn allocations_during(f: &mut impl FnMut()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Asserts `f` performs no heap allocation, tolerating at most one dirty
/// window of three: the counter is process-wide, and libtest's harness
/// thread can allocate concurrently (result bookkeeping of the previous
/// test races the measured window — observed as a rare one-off count).
/// Harness noise is a single burst, so it can dirty at most one window; a
/// genuine regression — per-interaction, per-chunk, or an event-driven
/// path like a reset that boxes something — dirties windows at its event
/// rate and trips the two-clean-window requirement.
fn assert_allocation_free(label: &str, mut f: impl FnMut()) {
    let dirty: Vec<u64> = (0..3)
        .map(|_| allocations_during(&mut f))
        .filter(|&count| count > 0)
        .collect();
    assert!(
        dirty.len() <= 1,
        "{label}: allocated in {} of 3 windows ({dirty:?} allocations per dirty window)",
        dirty.len()
    );
}

/// 100 full chunks plus a ragged tail, through every pipeline path
/// (gathered prefix, hazard fallback, observer-free compute).
const STEPS: u64 = 64 * 100 + 17;

/// Small populations run the in-place sequential path (the agent array is
/// far below the ~2 MB gather threshold).
#[test]
fn steady_state_sequential_stepping_never_allocates() {
    // Plain DSC: the raw-stepping hot path of every benchmark.
    let mut sim = Simulator::with_seed(DynamicSizeCounting::new(DscConfig::empirical()), 500, 11);
    sim.run_parallel_time(30.0); // warm up: reach steady state
    assert_allocation_free("plain DSC step_block must not allocate per chunk", || {
        sim.step_n(STEPS)
    });

    // The composed protocol: estimate-change restarts rebuild the payload
    // state, which must also be allocation-free (inline payloads only).
    let p = Composed::new(
        DynamicSizeCounting::new(DscConfig::empirical()),
        TimedRumor::new(8),
    );
    let mut sim = Simulator::with_seed(p, 500, 13);
    sim.run_parallel_time(30.0);
    assert_allocation_free("composed step_block must not allocate per chunk", || {
        sim.step_n(STEPS)
    });
}

/// Populations whose array exceeds the gather threshold run the
/// gather/compute/scatter pipeline — the path behind every n ≥ 10⁵
/// benchmark number — which must be allocation-free too (preallocated
/// scratch and hazard bitmap only).
#[test]
fn steady_state_gathered_stepping_never_allocates() {
    // 100 000 × 24-byte DscState ≈ 2.4 MB: above the ~2 MB threshold.
    let mut sim = Simulator::with_seed(
        DynamicSizeCounting::new(DscConfig::empirical()),
        100_000,
        14,
    );
    sim.run_parallel_time(2.0); // enough to settle lazy init; alloc-freedom
                                // does not depend on protocol convergence
    assert_allocation_free(
        "gathered plain DSC step_block must not allocate per chunk",
        || sim.step_n(STEPS),
    );

    // The averaged protocol crosses the threshold at much smaller n
    // (≈ 288-byte states): exercises gathered copies of inline payloads,
    // and its resets refill slots with GRVs — still no heap.
    let mut sim = Simulator::with_seed(AveragedDsc::new(DscConfig::empirical(), 16), 10_000, 12);
    sim.run_parallel_time(5.0);
    assert_allocation_free(
        "gathered averaged step_block must not allocate per chunk",
        || sim.step_n(STEPS),
    );
}

/// Arena-backed payload overflow keeps the zero-allocation guarantee: a
/// prefunded `De22Backing` (one fixed-quantum line run per expected agent)
/// serves every spill from the arena's free list, so stepping with live
/// overflow — on either engine — never touches the heap.
#[test]
fn steady_state_arena_backed_stepping_never_allocates() {
    let n = 256;
    let cap = 96;
    let inline = 4; // tiny inline prefix: essentially every agent spills

    let p = De22Counting::new().with_arena(De22Backing::new(cap, inline, n));
    let mut sim = Simulator::with_seed(p, n, 15);
    sim.run_parallel_time(60.0); // warm up: timer lists reach length > inline
    let spilled = sim.states().iter().filter(|s| s.spill_len > 0).count();
    assert!(
        spilled > n / 2,
        "warm-up must push most agents into the arena"
    );
    assert_allocation_free(
        "arena-backed DE22 stepping must not allocate per interaction",
        || sim.step_n(STEPS),
    );

    // Same guarantee on the struct-of-arrays engine (its scratch buffer
    // and hazard bitmap are preallocated like the agent-array engine's).
    let p = De22Counting::new().with_arena(De22Backing::new(cap, inline, n));
    let mut sim = SoaSimulator::with_seed(p, n, 15);
    sim.run_parallel_time(60.0);
    assert_allocation_free(
        "arena-backed DE22 stepping on the SoA engine must not allocate",
        || sim.step_n(STEPS),
    );

    // And the SoA engine's plain-DSC hot path (columnar gather/scatter).
    let mut sim =
        SoaSimulator::with_seed(DynamicSizeCounting::new(DscConfig::empirical()), 500, 11);
    sim.run_parallel_time(30.0);
    assert_allocation_free("SoA DSC stepping must not allocate per chunk", || {
        sim.step_n(STEPS)
    });
}

/// Arena blocks grow only at adversary events, never in steady state: the
/// growth-event counter is flat across steady stepping, and after a
/// population growth prefunded via [`De22Backing::reserve_additional`]
/// stepping is immediately flat (and allocation-free) again.
#[test]
fn arena_adversary_event_growth() {
    let n = 128;
    let backing = De22Backing::new(96, 2, n);
    let p = De22Counting::new().with_arena(backing.clone());
    let mut sim = Simulator::with_seed(p, n, 16);
    sim.run_parallel_time(40.0);

    let settled = backing.growth_events();
    sim.step_n(STEPS);
    assert_eq!(
        backing.growth_events(),
        settled,
        "steady-state stepping must not grow the arena"
    );

    // The adversary doubles the population; the growth event (and only
    // it) may add blocks — via the explicit prefund call.
    backing.reserve_additional(n);
    sim.resize_to(2 * n);
    sim.run_parallel_time(40.0);
    let after_growth = backing.growth_events();
    sim.step_n(STEPS);
    assert_eq!(
        backing.growth_events(),
        after_growth,
        "post-growth steady state must not grow the arena"
    );
    assert_allocation_free(
        "arena-backed stepping after adversary growth must be clean",
        || sim.step_n(STEPS),
    );
}

#[test]
fn population_growth_is_the_only_allocating_event() {
    // Sanity check that the counter works at all: growing the population
    // must allocate (the agent array reallocates), steady stepping after
    // the growth must again be clean.
    let mut sim = Simulator::with_seed(DynamicSizeCounting::new(DscConfig::empirical()), 256, 14);
    sim.run_parallel_time(10.0);
    let grow = allocations_during(&mut || sim.resize_to(2_048));
    assert!(grow > 0, "resizing the agent array must allocate");
    sim.run_parallel_time(10.0);
    assert_allocation_free("steady stepping after growth must be clean", || {
        sim.step_n(STEPS)
    });
}
