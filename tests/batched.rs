//! Batch-vs-exact equivalence for the tau-leaping backend.
//!
//! Above its exact-fallback threshold the batched backend is a
//! distribution-level approximation, so these tests compare the
//! *statistics* the paper's lemmas bound — epidemic completion windows
//! (Lemma 4.2) and CHVP decay bands (Lemmas 4.3/4.4) — between matched
//! count and batched sweeps, never trajectories. Below the threshold the
//! batched backend steps exactly, and the tests pin bit-identical
//! trajectories there, adversary events included.

use dynamic_size_counting::protocols::{BoundedChvp, Infection};
use dynamic_size_counting::sim::batched_sim::EXACT_POPULATION_THRESHOLD;
use dynamic_size_counting::sim::scenario::TraceSegment;
use dynamic_size_counting::sim::{
    AdversarySchedule, PopulationEvent, ScenarioTrace, Sweep, SweepResults,
};

fn log2n(n: usize) -> f64 {
    (n as f64).log2()
}

/// First snapshot time at which every agent holds an estimate.
fn completion_time(run: &dynamic_size_counting::sim::RunResult) -> Option<f64> {
    run.snapshots
        .iter()
        .find(|s| s.estimates.is_some_and(|e| e.without_estimate == 0))
        .map(|s| s.parallel_time)
}

/// Mean completion time over every run of a single-cell sweep.
fn mean_completion(results: &SweepResults) -> f64 {
    let runs = &results.cells[0].runs;
    let times: Vec<f64> = runs
        .iter()
        .map(|r| completion_time(r).expect("run must complete within the horizon"))
        .collect();
    times.iter().sum::<f64>() / times.len() as f64
}

fn infection_sweep(n: usize, master_seed: u64) -> Sweep<Infection> {
    Sweep::new(Infection::new())
        .populations([n])
        .runs(12)
        .master_seed(master_seed)
        .horizon(8.0 * log2n(n))
        .snapshot_every(1.0)
        .init_counts(|n| vec![n - 1, 1])
}

#[test]
fn infection_completion_distribution_matches_count_backend() {
    // Well above the exact threshold, so batching genuinely engages.
    let n = 1 << 14;
    let counted = mean_completion(&infection_sweep(n, 41).run_counted());
    let batched = mean_completion(&infection_sweep(n, 42).run_batched());
    let ratio = batched / counted;
    assert!(
        (0.85..1.18).contains(&ratio),
        "completion means disagree: count {counted:.1} vs batched {batched:.1} (ratio {ratio:.2})"
    );
    // Both sit inside the Lemma 4.2 window (k = 1): O(log n) with the
    // one-way-spread constant, bracketed as in the registry experiments.
    let bound = 8.0 * log2n(n);
    assert!(counted < bound && batched < bound);
}

#[test]
fn chvp_decay_bands_agree_between_backends() {
    // Lemmas 4.3/4.4: the max value decays inside a deterministic-width
    // window, so at a fixed readout time the estimate bands of matched
    // sweeps must overlap tightly — the same ±tolerance the agent/count
    // cross-check uses.
    let n = 1 << 14;
    let start = 100u32;
    let readout = 40.0;
    let sweep = |seed| {
        Sweep::new(BoundedChvp::new(start))
            .populations([n])
            .runs(8)
            .master_seed(seed)
            .horizon(readout)
            .snapshot_every(readout)
            .init_counts(move |n| {
                let mut counts = vec![0u64; start as usize + 1];
                counts[start as usize] = n;
                counts
            })
    };
    let band = |results: &SweepResults| {
        let runs = &results.cells[0].runs;
        runs.iter()
            .map(|r| r.snapshots.last().unwrap().estimates.unwrap().max)
            .sum::<f64>()
            / runs.len() as f64
    };
    let counted = band(&sweep(51).run_counted());
    let batched = band(&sweep(52).run_batched());
    assert!(
        (counted - batched).abs() <= 25.0,
        "CHVP decay bands diverged: count max {counted:.1} vs batched max {batched:.1}"
    );
    assert!(counted < f64::from(start) && batched < f64::from(start));
}

#[test]
fn below_threshold_batched_sweep_is_trajectory_identical_to_count() {
    // Populations at or below EXACT_POPULATION_THRESHOLD never batch:
    // the same seeds must reproduce the count backend's runs snapshot for
    // snapshot, through every adversary event shape.
    let threshold = EXACT_POPULATION_THRESHOLD as usize;
    let sweep = || {
        Sweep::new(Infection::new())
            .populations([512, threshold])
            .schedule("static", AdversarySchedule::new())
            .schedule(
                "churn",
                AdversarySchedule::new()
                    .at(2.0, PopulationEvent::RemoveUniform(100))
                    .at(4.0, PopulationEvent::Add(50))
                    .at(6.0, PopulationEvent::ResizeTo(256))
                    .at(8.0, PopulationEvent::RemoveLargestEstimates(10)),
            )
            .runs(3)
            .master_seed(61)
            .horizon(10.0)
            .init_counts(|n| vec![n - 1, 1])
    };
    let counted = sweep().run_counted();
    let batched = sweep().run_batched();
    assert_eq!(
        counted.cells, batched.cells,
        "below the exact threshold the batched backend must replay the count backend bit for bit"
    );
}

#[test]
fn crash_trace_completion_bands_agree_across_backends_at_scale() {
    // Adversary coverage far above EXACT_POPULATION_THRESHOLD: a
    // crash-burst trace at n = 10⁷ (batched, so tau-leaping genuinely
    // carries the adversary events) against a matched count-backend
    // control at n = 2·10⁴, each judged against the Lemma 4.2 window of
    // its *own* population.
    //
    // Why the window survives the bursts: uniform removals preserve the
    // infected fraction in expectation, and Lemma 4.2's epidemic argument
    // bounds the time to grow the infected *fraction* — shrinking n only
    // shortens the remaining work. The bursts start at t = 4, by when the
    // infected count is ≈ e⁴ ≈ 50, so a 30% uniform burst extinguishing
    // the epidemic (probability ≈ 0.3⁵⁰) is not a realistic flake source.
    let trace = ScenarioTrace::new().segment(TraceSegment::CrashBursts {
        start: 4.0,
        end: 10.0,
        bursts: 2,
        fraction: 0.3,
        volley: 2,
        spacing: 0.25,
    });
    let sweep = |n: usize, seed: u64| {
        Sweep::new(Infection::new())
            .populations([n])
            .scenario("bursts", trace.clone())
            .runs(8)
            .master_seed(seed)
            .horizon(8.0 * log2n(n))
            .snapshot_every(1.0)
            .init_counts(|n| vec![n - 1, 1])
    };
    let batched_n = 10_000_000;
    let counted_n = 20_000;
    let batched = sweep(batched_n, 81).run_batched();
    let counted = sweep(counted_n, 82).run_counted();
    for (results, n) in [(&batched, batched_n), (&counted, counted_n)] {
        for run in &results.cells[0].runs {
            let t = completion_time(run).expect("epidemic completes despite the bursts");
            assert!(
                t <= 8.0 * log2n(n),
                "completion at {t:.1} pt breaks the Lemma 4.2 window for n = {n}"
            );
        }
    }
    // Lemma 4.2 (k = 1) brackets one-way completion between log2 n and
    // 8·log2 n parallel time, i.e. normalized completion ∈ [1, 8] with
    // width Δ = 7. Two faithful backends sampling the same distribution
    // must land well inside a Δ/4 = 1.75 agreement margin; a systematic
    // batching bias would push the 10⁷-agent mean outside it.
    let normalized_batched = mean_completion(&batched) / log2n(batched_n);
    let normalized_counted = mean_completion(&counted) / log2n(counted_n);
    assert!(
        (normalized_batched - normalized_counted).abs() <= 1.75,
        "normalized completion diverged: batched {normalized_batched:.2} vs count {normalized_counted:.2}"
    );
}

#[test]
fn crossing_the_threshold_mid_run_stays_consistent() {
    // Start above the threshold (batching active), crash below it
    // (exact stepping takes over): population accounting and estimates
    // must stay coherent across the regime switch.
    let n = 4 * EXACT_POPULATION_THRESHOLD as usize;
    let survivors = EXACT_POPULATION_THRESHOLD as usize / 2;
    let r = Sweep::new(Infection::new())
        .populations([n])
        .schedule(
            "crash",
            // By t = 10 roughly 2^10 agents are infected, so the 8× crash
            // cannot plausibly extinguish the epidemic.
            AdversarySchedule::new().at(10.0, PopulationEvent::ResizeTo(survivors)),
        )
        .runs(4)
        .master_seed(71)
        .horizon(8.0 * log2n(n))
        .snapshot_every(1.0)
        .init_counts(|n| vec![n - 1, 1])
        .run_batched();
    for run in &r.cells[0].runs {
        assert_eq!(run.final_n, survivors);
        assert!(
            completion_time(run).is_some(),
            "epidemic must still complete after the crash"
        );
        for s in &run.snapshots {
            assert!(s.n == n || s.n == survivors, "no phantom population sizes");
        }
    }
}
