//! Reproducibility: seeded executions are bit-identical (the property the
//! paper gets from seeding ranlux; we get it from deriving per-run SmallRng
//! seeds from a master seed).

use dynamic_size_counting::dsc::{DscConfig, DynamicSizeCounting};
use dynamic_size_counting::sim::runner::run_seed;
use dynamic_size_counting::sim::{
    AdversarySchedule, Experiment, PopulationEvent, RunResult, Simulator, Sweep,
};

fn run(seed: u64) -> RunResult {
    Experiment::new(DynamicSizeCounting::new(DscConfig::empirical()), 512)
        .seed(seed)
        .horizon(300.0)
        .snapshot_every(5.0)
        .schedule(AdversarySchedule::new().at(150.0, PopulationEvent::ResizeTo(64)))
        .run()
}

#[test]
fn same_seed_same_run_including_adversary() {
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "seeded runs must be bit-identical");
}

#[test]
fn different_seeds_differ() {
    let a = run(42);
    let b = run(43);
    assert_ne!(
        a.snapshots, b.snapshots,
        "different seeds should (essentially surely) diverge"
    );
}

#[test]
fn simulator_states_replay_identically() {
    let p = DynamicSizeCounting::new(DscConfig::empirical());
    let run_states = |seed| {
        let mut sim = Simulator::with_seed(p, 256, seed);
        sim.run_parallel_time(100.0);
        sim.states().to_vec()
    };
    assert_eq!(run_states(7), run_states(7));
}

#[test]
fn derived_seeds_are_stable_across_invocations() {
    // The runner's seed derivation is part of reproducibility: if it ever
    // changes, recorded experiment CSVs stop being reproducible.
    assert_eq!(run_seed(0xD5C0_2024, 0), run_seed(0xD5C0_2024, 0));
    let seeds: Vec<u64> = (0..96).map(|i| run_seed(0xD5C0_2024, i)).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), 96);
}

#[test]
fn parallel_execution_does_not_change_results() {
    // The multi-run executor must produce the same per-run results
    // regardless of thread count (runs share nothing).
    let runs_with =
        |threads| pp_sim::parallel_map(4, threads, |i| run(run_seed(99, i)).snapshots.len());
    assert_eq!(runs_with(1), runs_with(4));
}

/// The sweep engine's contract: the same grid and master seed yield
/// bit-identical results no matter how the work is scheduled — serial
/// (`threads = 1`), machine parallelism (`threads = 0`), or any explicit
/// pool size. This leans on `parallel_map` returning results in index
/// order and on every run seed being derived from grid position alone.
#[test]
fn sweep_results_are_bit_identical_across_thread_counts() {
    let sweep_with = |threads: usize| {
        Sweep::new(DynamicSizeCounting::new(DscConfig::empirical()))
            .populations([64, 128])
            .schedule("static", AdversarySchedule::new())
            .schedule(
                "crash@40",
                AdversarySchedule::new().at(40.0, PopulationEvent::ResizeTo(16)),
            )
            .runs(3)
            .master_seed(0xD5C0_2024)
            .horizon(80.0)
            .snapshot_every(4.0)
            .threads(threads)
            .run()
    };
    let serial = sweep_with(1);
    let auto = sweep_with(0);
    let wide = sweep_with(8);
    // Cells carry every snapshot of every run, so equality here is
    // bit-for-bit over the full result structure.
    assert_eq!(serial.cells, auto.cells, "threads=1 vs threads=0 diverged");
    assert_eq!(serial.cells, wide.cells, "threads=1 vs threads=8 diverged");
    assert_eq!(serial.total_runs(), 12);
}
