//! Cross-validation: the agent-array simulator and the count-based
//! simulator produce statistically equivalent dynamics for finite-state
//! substrates (they implement the same scheduler distribution).

use dynamic_size_counting::protocols::{BoundedChvp, Clvp, Infection};
use dynamic_size_counting::sim::{CountSimulator, Simulator};
use pp_model::Configuration;

/// Mean epidemic completion time (parallel time) on the agent simulator.
fn agent_epidemic_time(n: usize, seeds: std::ops::Range<u64>) -> f64 {
    let mut total = 0.0;
    let count = seeds.end - seeds.start;
    for seed in seeds {
        let mut config = Configuration::uniform(n, false);
        *config.get_mut(0) = true;
        let mut sim = Simulator::from_config(Infection::new(), config, seed);
        while sim.states().iter().any(|&s| !s) {
            sim.step_n(n as u64 / 4 + 1);
        }
        total += sim.parallel_time();
    }
    total / count as f64
}

/// Mean epidemic completion time on the count simulator.
fn count_epidemic_time(n: u64, seeds: std::ops::Range<u64>) -> f64 {
    let mut total = 0.0;
    let count = seeds.end - seeds.start;
    for seed in seeds {
        let mut sim = CountSimulator::from_counts(Infection::new(), vec![n - 1, 1], seed);
        while sim.count(1) < n {
            sim.step_n(n / 4 + 1);
        }
        total += sim.parallel_time();
    }
    total / count as f64
}

#[test]
fn epidemic_completion_times_match_across_simulators() {
    let n = 2_000;
    let agent = agent_epidemic_time(n, 0..8);
    let count = count_epidemic_time(n as u64, 100..108);
    let ratio = agent / count;
    assert!(
        (0.8..1.25).contains(&ratio),
        "simulators disagree: agent {agent:.1} vs count {count:.1} (ratio {ratio:.2})"
    );
    // Both near the folklore 2·ln n ≈ 1.39·log2 n … with one-way spread the
    // constant is ~2× that; just bracket generously around log2 n.
    let log_n = (n as f64).log2();
    assert!(agent > log_n && agent < 6.0 * log_n);
}

#[test]
fn chvp_decay_rate_matches_across_simulators() {
    let n = 2_000usize;
    let start = 300u32;
    // Agent simulator.
    let mut sim =
        Simulator::from_config(BoundedChvp::new(start), Configuration::uniform(n, start), 1);
    sim.run_parallel_time(100.0);
    let agent_max = *sim.states().iter().max().unwrap();
    // Count simulator.
    let mut counts = vec![0u64; start as usize + 1];
    counts[start as usize] = n as u64;
    let mut csim = CountSimulator::from_counts(BoundedChvp::new(start), counts, 2);
    csim.run_parallel_time(100.0);
    let count_max = csim.max_occupied().unwrap() as u32;
    let diff = (i64::from(agent_max) - i64::from(count_max)).unsigned_abs();
    assert!(
        diff <= 25,
        "CHVP decay differs: agent max {agent_max} vs count max {count_max}"
    );
}

#[test]
fn clvp_saturation_matches_across_simulators() {
    let n = 1_000;
    let cap = 60;
    let mut sim = Simulator::with_seed(Clvp::new(cap), n, 3);
    sim.run_parallel_time(400.0);
    let agent_min = *sim.states().iter().min().unwrap();
    let mut csim = CountSimulator::with_seed(Clvp::new(cap), n as u64, 4);
    csim.run_parallel_time(400.0);
    let count_min = csim.min_occupied().unwrap() as u32;
    assert_eq!(agent_min, cap, "agent sim should saturate");
    assert_eq!(count_min, cap, "count sim should saturate");
}
