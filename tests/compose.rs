//! Composition with non-uniform payloads (the paper's §6 open problem,
//! prototyped in dsc-core::compose).

use dynamic_size_counting::dsc::{
    Composed, DscConfig, DynamicSizeCounting, RumorState, TimedRumor,
};
use dynamic_size_counting::sim::{AdversarySchedule, Experiment, PopulationEvent, Simulator};

fn composed() -> Composed<TimedRumor> {
    Composed::new(
        DynamicSizeCounting::new(DscConfig::empirical()),
        TimedRumor::new(8),
    )
}

#[test]
fn composition_estimates_like_the_bare_counter() {
    let n = 1_024;
    let r = Experiment::new(composed(), n)
        .seed(41)
        .horizon(400.0)
        .snapshot_every(10.0)
        .run();
    let med = r.snapshots.last().unwrap().estimates.unwrap().median;
    let log_kn = ((16 * n) as f64).log2();
    assert!(
        med >= 0.4 * log_kn && med <= 2.5 * log_kn,
        "composed estimate {med} should match the counter's ({log_kn:.1})"
    );
}

#[test]
fn payload_budgets_track_estimate_changes_after_resize() {
    let n = 2_048;
    let r = Experiment::new(composed(), n)
        .seed(42)
        .horizon(2_000.0)
        .snapshot_every(10.0)
        .schedule(AdversarySchedule::new().at(400.0, PopulationEvent::ResizeTo(64)))
        .run();
    // After the crash the payloads must have been restarted with smaller
    // budgets — indirectly visible through the estimate they were sized by.
    // Loose stabilization (paper Theorem 2.1) only promises a correct
    // estimate for *most* of the time after convergence: a rare high GRV
    // transiently re-spikes the whole population's estimate (max values
    // spread by epidemic) before the next reset clears it. A single-instant
    // readout therefore flakes on unlucky seeds/RNG streams; read the
    // median over the final 200 parallel-time units instead (the same fix
    // as tests/baselines.rs::de22_adapts_but_uses_more_memory).
    let before = r.snapshot_at(390.0).estimates.unwrap().median;
    let mut window: Vec<f64> = r
        .snapshots
        .iter()
        .filter(|s| s.parallel_time >= 1_800.0)
        .filter_map(|s| s.estimates.as_ref().map(|e| e.median))
        .collect();
    window.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN medians"));
    let after = window[window.len() / 2];
    assert!(after < before, "estimate (and payload sizing) must shrink");
}

#[test]
fn rumor_completes_within_budget_on_converged_population() {
    let n = 512;
    let p = composed();
    let mut sim = Simulator::with_seed(p, n, 43);
    sim.run_parallel_time(200.0); // converge the counter
    let estimate = sim.states()[0].payload_estimate;
    assert!(estimate >= 4, "estimate should be Θ(log n) by now");
    // Fresh payload round: one informed agent, full budgets.
    for i in 0..n {
        let st = sim.state_mut(i);
        st.payload = RumorState {
            informed: i == 0,
            budget: 8 * estimate,
        };
    }
    sim.run_parallel_time(40.0);
    let informed = sim.states().iter().filter(|s| s.payload.informed).count();
    assert_eq!(
        informed, n,
        "a budget of 8·log n own interactions must suffice for the epidemic"
    );
}

#[test]
fn undersized_budget_fails_demonstrating_nonuniformity() {
    // The counter exists because the payload NEEDS log n: a constant
    // budget (as if log n were 1) cannot finish the epidemic — this is the
    // non-uniformity the paper's protocol supplies.
    let n = 2_048;
    let p = composed();
    let mut sim = Simulator::with_seed(p, n, 44);
    sim.run_parallel_time(200.0);
    for i in 0..n {
        let st = sim.state_mut(i);
        st.payload = RumorState {
            informed: i == 0,
            budget: 3, // as if the estimate were ~0: far too small
        };
    }
    sim.run_parallel_time(40.0);
    let informed = sim.states().iter().filter(|s| s.payload.informed).count();
    assert!(
        informed < n / 2,
        "a constant budget must NOT suffice at n = {n} (informed: {informed})"
    );
}
