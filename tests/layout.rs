//! Compile-time/size regression tests for the packed agent-state layouts.
//!
//! At n ≥ 10⁵ the agent array outgrows L2 and raw stepping is bound by the
//! memory latency of the two random agent loads per interaction, so bytes
//! per state translate directly into throughput. These tests pin the
//! layout invariants the stepping engine's performance rests on:
//!
//! * `DscState` ≤ 32 bytes — two states per 64-byte cache line;
//! * every payload-carrying state stores its payload *inline* up to its
//!   cap (fixed-capacity arrays, no heap pointer), so an agent access is
//!   one cache-line fetch, never a dependent pointer chase — overflow
//!   above the cap goes through the `PayloadArena` as a small `Copy`
//!   handle (`LineRun`), not a pointer;
//! * the inline capacities match the documented payload bounds;
//! * the struct-of-arrays column layouts (`DscColumns`,
//!   `AveragedColumns`) keep the hot/cold split the SoA engine's scan
//!   performance rests on: 4-byte `u32` lanes for the scan fields,
//!   a 16-byte grouped clock record for the random-access fields.
//!
//! Growing any of these is allowed — but it is a deliberate performance
//! decision that must update this file (and the README layout notes), not
//! an accident of adding a field.

use dynamic_size_counting::dsc::{
    AveragedPayload, AveragedState, ComposedState, DscClock, DscState, RumorState, SlotVec,
    MAX_SLOTS,
};
use dynamic_size_counting::model::arena::{LineRun, ARENA_LINE_BYTES};
use dynamic_size_counting::model::{Columnar, StateColumns};
use dynamic_size_counting::protocols::{De19State, De22State, DE19_MAX_SLOTS, DE22_MAX_VALUES};
use std::mem::{align_of, size_of, size_of_val};

#[test]
fn dsc_state_fits_half_a_cache_line() {
    // The tentpole invariant: 24 bytes packed (was 40 at the seed), so two
    // states share a 64-byte line with room to spare.
    assert!(size_of::<DscState>() <= 32);
    assert_eq!(size_of::<DscState>(), 24);
    assert_eq!(align_of::<DscState>(), 8);
}

#[test]
fn averaged_state_is_inline_and_bounded() {
    // dsc (24) + two inline slot arrays (len + MAX_SLOTS × u32 each).
    let slot_vec = size_of::<SlotVec>();
    assert!(slot_vec <= MAX_SLOTS * 4 + 4);
    assert!(size_of::<AveragedState>() <= size_of::<DscState>() + 2 * slot_vec + 8);
}

#[test]
fn de19_state_is_inline_and_bounded() {
    assert!(size_of::<De19State>() <= DE19_MAX_SLOTS * 4 + 4 + 4);
}

#[test]
fn de22_state_is_inline_and_bounded() {
    // Inline timers (len + DE22_MAX_VALUES × u32) plus the arena overflow
    // handle: a 12-byte LineRun and a 4-byte spill length. The handle is
    // plain data — overflow adds 16 bytes, not a heap pointer.
    assert_eq!(size_of::<LineRun>(), 12);
    assert!(size_of::<De22State>() <= DE22_MAX_VALUES * 4 + 4 + size_of::<LineRun>() + 4);
}

#[test]
fn composed_rumor_state_stays_compact() {
    // Counting layer + payload + restart marker, all inline.
    assert!(size_of::<ComposedState<RumorState>>() <= size_of::<DscState>() + 16);
}

#[test]
fn payload_states_are_copy() {
    // Inline storage makes the payload states plain-old-data: the gather/
    // scatter engine copies them with memcpy, never a heap clone. `Copy`
    // bounds are the compile-time proof — including the arena-backed
    // `De22State`, whose spill handle is a Copy LineRun, not a pointer.
    fn assert_copy<T: Copy>() {}
    assert_copy::<DscState>();
    assert_copy::<AveragedState>();
    assert_copy::<De19State>();
    assert_copy::<De22State>();
    assert_copy::<ComposedState<RumorState>>();
    assert_copy::<LineRun>();
}

/// The SoA column layout invariants: scan lanes are dense 4-byte `u32`
/// columns (16 agents per 64-byte cache line, unit stride — the layout
/// the auto-vectorized `effective_max` scans rest on), and the grouped
/// cold fields stay one 16-byte record.
#[test]
fn dsc_columns_keep_the_hot_cold_split() {
    // The two scan fields are bare u32 lanes. A whole-population
    // effective_max pass reads 8 bytes per agent instead of 24.
    let mut cols = <DscState as Columnar>::Columns::default();
    cols.push(DscState {
        time: 1,
        max: 2,
        last_max: 3,
        interactions: 4,
        ticks: 5,
    });
    let lanes = cols
        .estimate_lanes()
        .expect("DSC columns expose scan lanes");
    assert_eq!(size_of_val(&lanes.max[0]), 4, "max lane: 4-byte elements");
    assert_eq!(
        size_of_val(&lanes.last_max[0]),
        4,
        "last_max lane: 4-byte elements"
    );

    // The cold record groups time + interactions + ticks: 16 bytes, four
    // records per cache line. Splitting further would triple the random-
    // access traffic of the gather stage for fields no scan reads.
    assert_eq!(size_of::<DscClock>(), 16);
    assert_eq!(align_of::<DscClock>(), 8);

    // Lanes + clock partition the struct exactly: no field stored twice,
    // none dropped (4 + 4 + 16 = 24 = size_of::<DscState>()).
    assert_eq!(4 + 4 + size_of::<DscClock>(), size_of::<DscState>());
}

#[test]
fn averaged_columns_keep_payload_cold() {
    // The averaged layout reuses the DSC hot lanes and keeps the slot
    // payloads in one separate cold region.
    assert!(size_of::<AveragedPayload>() <= 2 * size_of::<SlotVec>());
    let cols = <AveragedState as Columnar>::Columns::default();
    assert!(
        cols.estimate_lanes().is_none(),
        "averaged estimates come from slot payloads — no dense-lane shortcut"
    );
}

#[test]
fn arena_line_holds_whole_u32_payload_chunks() {
    // 128-byte lines tile exactly into u32 slots (32 per line), so spill
    // runs are always whole-line and slice arithmetic stays shift/mask.
    assert_eq!(ARENA_LINE_BYTES % 4, 0);
    assert_eq!(ARENA_LINE_BYTES / 4, 32);
}
