//! Compile-time/size regression tests for the packed agent-state layouts.
//!
//! At n ≥ 10⁵ the agent array outgrows L2 and raw stepping is bound by the
//! memory latency of the two random agent loads per interaction, so bytes
//! per state translate directly into throughput. These tests pin the
//! layout invariants the stepping engine's performance rests on:
//!
//! * `DscState` ≤ 32 bytes — two states per 64-byte cache line;
//! * every payload-carrying state stores its payload *inline*
//!   (fixed-capacity arrays, no heap pointer), so an agent access is one
//!   cache-line fetch, never a dependent pointer chase;
//! * the inline capacities match the documented payload bounds.
//!
//! Growing any of these is allowed — but it is a deliberate performance
//! decision that must update this file (and the README layout notes), not
//! an accident of adding a field.

use dynamic_size_counting::dsc::{
    AveragedState, ComposedState, DscState, RumorState, SlotVec, MAX_SLOTS,
};
use dynamic_size_counting::protocols::{De19State, De22State, DE19_MAX_SLOTS, DE22_MAX_VALUES};
use std::mem::{align_of, size_of};

#[test]
fn dsc_state_fits_half_a_cache_line() {
    // The tentpole invariant: 24 bytes packed (was 40 at the seed), so two
    // states share a 64-byte line with room to spare.
    assert!(size_of::<DscState>() <= 32);
    assert_eq!(size_of::<DscState>(), 24);
    assert_eq!(align_of::<DscState>(), 8);
}

#[test]
fn averaged_state_is_inline_and_bounded() {
    // dsc (24) + two inline slot arrays (len + MAX_SLOTS × u32 each).
    let slot_vec = size_of::<SlotVec>();
    assert!(slot_vec <= MAX_SLOTS * 4 + 4);
    assert!(size_of::<AveragedState>() <= size_of::<DscState>() + 2 * slot_vec + 8);
}

#[test]
fn de19_state_is_inline_and_bounded() {
    assert!(size_of::<De19State>() <= DE19_MAX_SLOTS * 4 + 4 + 4);
}

#[test]
fn de22_state_is_inline_and_bounded() {
    assert!(size_of::<De22State>() <= DE22_MAX_VALUES * 4 + 4);
}

#[test]
fn composed_rumor_state_stays_compact() {
    // Counting layer + payload + restart marker, all inline.
    assert!(size_of::<ComposedState<RumorState>>() <= size_of::<DscState>() + 16);
}

#[test]
fn payload_states_are_copy() {
    // Inline storage makes the payload states plain-old-data: the gather/
    // scatter engine copies them with memcpy, never a heap clone. `Copy`
    // bounds are the compile-time proof.
    fn assert_copy<T: Copy>() {}
    assert_copy::<DscState>();
    assert_copy::<AveragedState>();
    assert_copy::<De19State>();
    assert_copy::<De22State>();
    assert_copy::<ComposedState<RumorState>>();
}
