//! The `Protocol::ONE_WAY` contract, pinned for every protocol that claims
//! it.
//!
//! `ONE_WAY = true` lets the observers (`EstimateTracker`, `TickRecorder`)
//! skip all responder-side bookkeeping; a protocol that claims it but
//! mutates `v` silently desynchronizes every incremental metric. This
//! suite runs each claimant under a guard observer that snapshots the
//! responder before every interaction and asserts it unchanged after —
//! driven from states the protocol actually reaches, not just fresh ones.

use dynamic_size_counting::dsc::{
    AveragedDsc, Composed, DscConfig, DynamicSizeCounting, SimplifiedDynamicSizeCounting,
    SyntheticDsc, TimedRumor,
};
use dynamic_size_counting::model::Protocol;
use dynamic_size_counting::protocols::{
    BoundedChvp, BoundedMaxEpidemic, Chvp, Clvp, De19Averaging, De22Counting, Infection,
    JuntaElection, MaxEpidemic, ModMClock, StaticGrvCounting,
};
use dynamic_size_counting::sim::observer::Observer;
use dynamic_size_counting::sim::Simulator;

/// Asserts after every interaction that the responder state is unchanged.
struct ResponderGuard<S> {
    pre_v: Option<S>,
    checked: u64,
}

impl<S> Default for ResponderGuard<S> {
    fn default() -> Self {
        ResponderGuard {
            pre_v: None,
            checked: 0,
        }
    }
}

impl<P: Protocol> Observer<P> for ResponderGuard<P::State> {
    fn pre_interact(&mut self, _: &P, _: &P::State, v: &P::State, _: usize, _: usize, _: u64) {
        self.pre_v = Some(v.clone());
    }
    fn post_interact(&mut self, _: &P, _: &P::State, v: &P::State, _: usize, vi: usize, t: u64) {
        assert!(
            self.pre_v.as_ref() == Some(v),
            "responder (agent {vi}) mutated at interaction {t} by a protocol claiming ONE_WAY"
        );
        self.checked += 1;
    }
    fn agent_added(&mut self, _: &P, _: &P::State) {}
    fn agent_removed(&mut self, _: &P, _: &P::State) {}
}

/// Runs `protocol` for `time` parallel time on 64 agents under the guard.
/// `plant` may seed diversity (protocols whose fresh configurations are
/// already quiescent need a nontrivial state to exercise every branch).
fn guard<P>(protocol: P, time: f64, plant: impl FnOnce(&mut Simulator<P, ResponderGuard<P::State>>))
where
    P: Protocol,
{
    assert!(P::ONE_WAY, "this suite only covers ONE_WAY claimants");
    let mut sim = Simulator::with_observer(protocol, 64, 0xD5C0, ResponderGuard::default());
    plant(&mut sim);
    sim.run_parallel_time(time);
    let checked = sim.observer().checked;
    assert!(
        checked >= 64 * time as u64,
        "guard saw {checked} interactions"
    );
}

fn empirical() -> DscConfig {
    DscConfig::empirical()
}

#[test]
fn dsc_family_is_one_way() {
    guard(DynamicSizeCounting::new(empirical()), 300.0, |_| {});
    guard(
        SimplifiedDynamicSizeCounting::new(empirical()),
        300.0,
        |_| {},
    );
    guard(SyntheticDsc::new(empirical()), 300.0, |_| {});
    guard(AveragedDsc::new(empirical(), 8), 300.0, |_| {});
    guard(
        Composed::new(DynamicSizeCounting::new(empirical()), TimedRumor::new(8)),
        300.0,
        |sim| sim.state_mut(0).payload.informed = true,
    );
}

#[test]
fn substrates_are_one_way() {
    guard(MaxEpidemic::new(), 50.0, |sim| *sim.state_mut(0) = 99);
    guard(Infection::new(), 50.0, |sim| *sim.state_mut(0) = true);
    guard(BoundedMaxEpidemic::new(40), 50.0, |sim| {
        *sim.state_mut(0) = 99
    });
    guard(Chvp::new(), 50.0, |sim| *sim.state_mut(0) = 80);
    guard(Clvp::new(200), 50.0, |sim| *sim.state_mut(0) = 3);
    guard(BoundedChvp::new(100), 50.0, |sim| *sim.state_mut(0) = 90);
    guard(ModMClock::new(32), 100.0, |_| {});
}

#[test]
fn counting_baselines_are_one_way() {
    guard(De19Averaging::new(8), 100.0, |_| {});
    guard(De22Counting::new(), 100.0, |_| {});
    guard(StaticGrvCounting::new(16), 100.0, |_| {});
    guard(JuntaElection::new(2), 100.0, |_| {});
}
